"""The fault engine: triggers, determinism, per-layer effects."""

import errno

import pytest

from repro.clock import SimClock
from repro.errors import SyscallError
from repro.faults.engine import FaultEngine, maybe_engine


def engine_on_clock(plan, seed=0):
    engine = FaultEngine(plan, seed=seed)
    engine.arm(SimClock())
    return engine


class TestAttachment:
    def test_maybe_engine_default_none(self):
        assert maybe_engine(SimClock()) is None

    def test_arm_and_disarm(self):
        clock = SimClock()
        engine = FaultEngine("irq.drop").arm(clock)
        assert maybe_engine(clock) is engine
        engine.disarm()
        assert maybe_engine(clock) is None

    def test_disarm_leaves_other_engine_alone(self):
        clock = SimClock()
        first = FaultEngine("irq.drop").arm(clock)
        second = FaultEngine("irq.dup").arm(clock)
        first.disarm()
        assert maybe_engine(clock) is second


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        engine = engine_on_clock("irq.drop:nth=3")
        assert [engine.drop_irq() for _ in range(6)] == \
            [False, False, True, False, False, False]

    def test_every(self):
        engine = engine_on_clock("irq.drop:every=2")
        assert [engine.drop_irq() for _ in range(6)] == \
            [False, True, False, True, False, True]

    def test_after_shifts_warmup(self):
        engine = engine_on_clock("irq.drop:after=3")
        assert [engine.drop_irq() for _ in range(5)] == \
            [False, False, False, True, True]

    def test_times_caps_fires(self):
        engine = engine_on_clock("irq.drop:times=2")
        assert [engine.drop_irq() for _ in range(5)] == \
            [True, True, False, False, False]

    def test_always_fires(self):
        engine = engine_on_clock("irq.drop")
        assert all(engine.drop_irq() for _ in range(4))

    def test_probability_extremes(self):
        assert not any(
            engine_on_clock("irq.drop:p=0").drop_irq() for _ in range(20)
        )
        assert all(
            engine_on_clock("irq.drop:p=1").drop_irq() for _ in range(20)
        )

    def test_call_filter_gates_occurrences(self):
        engine = engine_on_clock("proxy.kill:nth=2:call=open")
        assert not engine.kill_proxy(call="read")
        assert not engine.kill_proxy(call="open")   # occurrence 1
        assert not engine.kill_proxy(call="read")
        assert engine.kill_proxy(call="open")       # occurrence 2
        assert not engine.kill_proxy(call="open")

    def test_first_matching_rule_wins(self):
        engine = engine_on_clock("irq.drop:nth=1;irq.drop:every=1")
        assert engine.drop_irq()
        assert len(engine.fired) == 1
        assert engine.fired[0]["rule"] == "irq.drop:nth=1"

    def test_shadowed_rule_counter_still_advances(self):
        # rule 2 counts occurrence 1 even though rule 1 fired on it
        engine = engine_on_clock("irq.drop:nth=1;irq.drop:nth=2")
        assert engine.drop_irq()
        assert engine.drop_irq()
        assert [record["rule"] for record in engine.fired] == \
            ["irq.drop:nth=1", "irq.drop:nth=2"]


class TestDeterminism:
    PLAN = "channel.corrupt:p=0.3;irq.drop:p=0.2"

    def drive(self, seed):
        engine = engine_on_clock(self.PLAN, seed=seed)
        outcomes = []
        for i in range(40):
            outcomes.append(engine.channel_payload("to-guest",
                                                   b"payload-%d" % i))
            outcomes.append(engine.drop_irq())
        return outcomes, engine.report()

    def test_same_seed_identical(self):
        assert self.drive(7) == self.drive(7)

    def test_different_seed_diverges(self):
        assert self.drive(1)[0] != self.drive(2)[0]

    def test_report_is_json_stable(self):
        import json
        a = json.dumps(self.drive(7)[1], sort_keys=True)
        b = json.dumps(self.drive(7)[1], sort_keys=True)
        assert a == b


class TestEffects:
    def test_corrupt_flips_one_byte(self):
        engine = engine_on_clock("channel.corrupt:nth=1")
        data = b"A" * 64
        mangled = engine.channel_payload("to-guest", data)
        assert mangled != data
        assert len(mangled) == len(data)
        assert sum(a != b for a, b in zip(mangled, data)) == 1

    def test_truncate_halves(self):
        engine = engine_on_clock("channel.truncate:nth=1")
        assert engine.channel_payload("to-host", b"B" * 64) == b"B" * 32

    def test_empty_payload_untouched_and_uncounted(self):
        engine = engine_on_clock("channel.corrupt:nth=1")
        assert engine.channel_payload("to-guest", b"") == b""
        assert engine.fired == []
        # nth=1 still pending: the next real payload gets it
        assert engine.channel_payload("to-guest", b"xx") != b"xx"

    def test_stall_duration(self):
        engine = engine_on_clock("channel.stall:nth=1:delay_us=500")
        assert engine.channel_stall_ns("to-guest") == 500_000
        assert engine.channel_stall_ns("to-guest") == 0

    def test_slow_boot_default(self):
        engine = engine_on_clock("cvm.slow-boot:nth=1")
        assert engine.slow_boot_ns() == 250_000_000

    def test_fired_log_records_context(self):
        engine = engine_on_clock("proxy.kill:nth=1:call=open")
        engine.kill_proxy(call="open")
        record = engine.fired[0]
        assert record["site"] == "proxy.kill"
        assert record["call"] == "open"
        assert record["occurrence"] == 1


class TestSyscallPerturbation:
    def test_injected_errno(self, anception_world, enrolled_ctx):
        engine = FaultEngine("syscall.error:nth=1:call=open:errno=ENOSPC")
        engine.arm(anception_world.clock)
        try:
            with pytest.raises(SyscallError) as exc:
                enrolled_ctx.libc.open(
                    enrolled_ctx.data_path("doomed"), 0o102
                )
            assert exc.value.errno == errno.ENOSPC
            # only the first open is perturbed
            fd = enrolled_ctx.libc.open(
                enrolled_ctx.data_path("doomed"), 0o102
            )
            enrolled_ctx.libc.close(fd)
        finally:
            engine.disarm()

    def test_injected_delay_advances_clock(self, anception_world,
                                           enrolled_ctx):
        engine = FaultEngine("syscall.delay:nth=1:delay_us=1000")
        engine.arm(anception_world.clock)
        try:
            with anception_world.clock.measure() as slow:
                enrolled_ctx.libc.getpid()
            with anception_world.clock.measure() as fast:
                enrolled_ctx.libc.getpid()
            assert slow.elapsed_ns - fast.elapsed_ns == 1_000_000
        finally:
            engine.disarm()
