"""The fault-plan grammar: parsing, validation, normalization."""

import errno

import pytest

from repro.faults.plan import SITES, FaultPlan, FaultRule


class TestRuleParsing:
    def test_bare_site(self):
        rule = FaultRule.parse("irq.drop")
        assert rule.site == "irq.drop"
        assert rule.probability is None and rule.nth is None

    def test_full_rule(self):
        rule = FaultRule.parse(
            "syscall.error:nth=3:call=open:errno=ENOSPC"
        )
        assert rule.site == "syscall.error"
        assert rule.nth == 3
        assert rule.call == "open"
        assert rule.errno_value == errno.ENOSPC

    def test_probability(self):
        rule = FaultRule.parse("channel.corrupt:p=0.25")
        assert rule.probability == 0.25

    def test_whitespace_tolerated(self):
        rule = FaultRule.parse("  cvm.crash : nth=2 ")
        assert rule.site == "cvm.crash"
        assert rule.nth == 2

    def test_every_after_times(self):
        rule = FaultRule.parse("irq.drop:every=3:after=2:times=4")
        assert (rule.every, rule.after, rule.times) == (3, 2, 4)

    def test_delay(self):
        rule = FaultRule.parse("channel.stall:delay_us=500")
        assert rule.delay_ns == 500_000

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule.parse("warp.core.breach")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            FaultRule.parse("irq.drop:when=later")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultRule.parse("irq.drop:nth")

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultRule.parse("irq.drop:nth=1:nth=2")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule.parse("channel.corrupt:p=1.5")

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            FaultRule.parse("irq.drop:nth=soon")

    def test_zero_nth_rejected(self):
        with pytest.raises(ValueError, match="nth"):
            FaultRule.parse("irq.drop:nth=0")

    def test_unknown_errno_rejected(self):
        with pytest.raises(ValueError, match="errno"):
            FaultRule.parse("syscall.error:errno=EWAT")

    def test_default_errno_is_eio(self):
        assert FaultRule.parse("syscall.error").errno_value == errno.EIO

    def test_spec_round_trips(self):
        spec = "syscall.error:nth=3:call=open:errno=ENOSPC"
        assert FaultRule.parse(spec).spec() == spec
        assert FaultRule.parse(FaultRule.parse(spec).spec()).spec() == spec


class TestRuleMatching:
    def test_call_filter(self):
        rule = FaultRule.parse("proxy.kill:call=open")
        assert rule.matches(call="open")
        assert not rule.matches(call="read")
        assert not rule.matches(call=None)

    def test_kernel_filter(self):
        rule = FaultRule.parse("syscall.error:kernel=cvm")
        assert rule.matches(call="open", kernel="cvm")
        assert not rule.matches(call="open", kernel="host")

    def test_unfiltered_matches_everything(self):
        rule = FaultRule.parse("irq.drop")
        assert rule.matches()
        assert rule.matches(call="anything", kernel="anywhere")


class TestPlan:
    def test_parse_multi_rule(self):
        plan = FaultPlan.parse("irq.drop:nth=2;cvm.crash:nth=1")
        assert len(plan) == 2
        assert plan.describe() == ["irq.drop:nth=2", "cvm.crash:nth=1"]

    def test_empty_plan(self):
        assert len(FaultPlan.parse("")) == 0
        assert len(FaultPlan.parse(None)) == 0

    def test_parse_is_idempotent_on_plans(self):
        plan = FaultPlan.parse("irq.drop")
        assert FaultPlan.parse(plan) is plan

    def test_rules_for_site(self):
        plan = FaultPlan.parse("irq.drop:nth=1;cvm.crash;irq.drop:nth=5")
        indexed = plan.rules_for("irq.drop")
        assert [index for index, _ in indexed] == [0, 2]

    def test_every_site_documented(self):
        for site, description in SITES.items():
            assert description
            assert FaultRule.parse(site).site == site
