"""vold and the GingerBreak vulnerability mechanics."""

import json

import pytest

from repro.android.services.vold import gingerbreak_magic_index
from repro.events import drain_compromises
from repro.kernel.filesystems import VOLD_GOT_ADDRESS
from repro.kernel.loader import build_pseudo_elf
from repro.kernel.net import AF_NETLINK, NETLINK_KOBJECT_UEVENT, SOCK_DGRAM
from repro.kernel.process import Credentials
from repro.world import NativeWorld


@pytest.fixture
def world():
    return NativeWorld()


@pytest.fixture
def vold(world):
    return world.system.service("vold")


def send_netlink(world, message):
    sender = world.kernel.network.create_socket(
        AF_NETLINK, SOCK_DGRAM, NETLINK_KOBJECT_UEVENT, 999
    )
    sender.send(json.dumps(message).encode())


class TestMagicIndex:
    def test_deterministic_in_got(self):
        a = gingerbreak_magic_index(VOLD_GOT_ADDRESS)
        b = gingerbreak_magic_index(VOLD_GOT_ADDRESS)
        assert a == b
        assert a < 0

    def test_varies_with_layout(self):
        assert gingerbreak_magic_index(0x10000) != gingerbreak_magic_index(
            0x10ABCDE0
        )


class TestNetlinkHandler:
    def test_positive_index_harmless(self, world, vold):
        send_netlink(world, {"action": "add", "index": 3})
        assert vold.crash_count == 0
        assert vold.executed_binaries == []

    def test_non_add_action_ignored(self, world, vold):
        send_netlink(world, {"action": "remove", "index": -5})
        assert vold.crash_count == 0

    def test_malformed_message_logged_as_crash(self, world, vold):
        sender = world.kernel.network.create_socket(
            AF_NETLINK, SOCK_DGRAM, NETLINK_KOBJECT_UEVENT, 999
        )
        sender.send(b"\xff\xfe not json")
        assert vold.crash_count == 1

    def test_wrong_negative_index_faults_and_logs(self, world, vold):
        send_netlink(world, {"action": "add", "index": -4})
        assert vold.crash_count == 1
        entries = world.kernel.log_device.entries
        assert any("fault index -4" in msg for _tag, msg in entries)

    def test_magic_index_executes_attacker_binary_as_root(self, world, vold):
        import repro.exploits.payloads  # noqa: F401

        root = Credentials(0)
        blob = build_pseudo_elf("stage2", 0, {}, payload="root-payload")
        open_file = world.kernel.vfs.open(
            "/data/local/tmp/stage2", 0x41, root, 0o755
        )
        open_file.write(blob)
        send_netlink(world, {
            "action": "add",
            "index": vold._magic_index,
            "path": "/data/local/tmp/stage2",
        })
        assert vold.executed_binaries == ["/data/local/tmp/stage2"]
        events = drain_compromises()
        assert any(e["got_root"] and e["kernel"] == "host" for e in events)

    def test_magic_index_with_missing_binary_logs_failure(self, world, vold):
        send_netlink(world, {
            "action": "add",
            "index": vold._magic_index,
            "path": "/data/local/tmp/nothing",
        })
        assert vold.executed_binaries == []
        assert vold.crash_count == 1


class TestBinderInterface:
    def test_mount_unmount(self, world, vold):
        reply = vold.handle_transaction("mount", {"path": "/mnt/sdcard"},
                                        vold.task)
        assert reply["status"] == "mounted"
        reply = vold.handle_transaction("unmount", {}, vold.task)
        assert reply["status"] == "unmounted"

    def test_vold_task_identity(self, vold):
        assert vold.task.exe_path == "/system/bin/vold"
        assert vold.task.credentials.is_root()
