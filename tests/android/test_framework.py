"""AndroidSystem boot profiles: full, headless, ui_only."""

import pytest

from repro.android.framework import AndroidSystem
from repro.errors import SimulationError
from repro.kernel.kernel import Machine


def boot(profile):
    return AndroidSystem(Machine(total_mb=256).kernel, profile=profile)


class TestProfiles:
    def test_unknown_profile_rejected(self):
        with pytest.raises(SimulationError):
            boot("exotic")

    def test_full_has_everything(self):
        system = boot("full")
        assert system.has_service("window")
        assert system.has_service("vold")
        assert system.ui_stack is not None

    def test_headless_has_no_ui(self):
        system = boot("headless")
        assert not system.has_service("window")
        assert not system.has_service("input")
        assert system.has_service("vold")
        assert system.has_service("location")
        assert system.ui_stack is None

    def test_ui_only_has_no_delegated_services(self):
        system = boot("ui_only")
        assert system.has_service("window")
        assert not system.has_service("vold")
        assert not system.has_service("location")

    def test_headless_has_no_framebuffer_node(self):
        from repro.kernel.process import Credentials

        system = boot("headless")
        assert not system.kernel.vfs.exists(
            "/dev/graphics/fb0", Credentials(0)
        )

    def test_headless_has_no_input_device(self):
        system = boot("headless")
        assert system.kernel.input_device is None

    def test_full_has_framebuffer_world_rw(self):
        from repro.kernel.process import Credentials

        system = boot("full")
        inode = system.kernel.vfs.resolve(
            "/dev/graphics/fb0", Credentials(0)
        )
        assert inode.mode & 0o666 == 0o666  # the CVE-2013-2596 mode

    def test_binder_node_exists_in_all_profiles(self):
        from repro.kernel.process import Credentials

        for profile in ("full", "headless", "ui_only"):
            system = boot(profile)
            assert system.kernel.vfs.exists("/dev/binder", Credentials(0))

    def test_log_device_wired(self):
        system = boot("headless")
        assert system.kernel.log_device is not None

    def test_service_lookup_raises_for_wrong_profile(self):
        system = boot("headless")
        with pytest.raises(SimulationError):
            system.service("window")


class TestUiServiceNames:
    def test_full_reports_ui_names(self):
        names = boot("full").ui_service_names()
        assert names == {"window", "input", "activity", "surfaceflinger"}

    def test_headless_reports_none(self):
        assert boot("headless").ui_service_names() == set()


class TestMemoryAccounting:
    def test_headless_smaller_than_full(self):
        assert boot("headless").memory_kb() < boot("full").memory_kb()

    def test_proxies_add_footprint(self):
        system = boot("headless")
        assert (
            system.memory_kb(proxy_count=10)
            == system.memory_kb() + 10 * 96
        )

    def test_headless_fits_in_cvm_window(self):
        assert boot("headless").memory_kb() < 64 * 1024
