"""The Android permission -> GID model (paranoid networking)."""

import pytest

from repro.android.app import App, AppManifest
from repro.android.installer import PERMISSION_GIDS, permission_groups
from repro.errors import SyscallError
from repro.kernel.net import AF_INET, AF_UNIX, PF_BLUETOOTH, SOCK_DGRAM, SOCK_STREAM


class _NoNetApp(App):
    manifest = AppManifest("com.example.nonet")

    def main(self, ctx):
        return {"uid": ctx.libc.getuid()}


class _NetApp(App):
    manifest = AppManifest("com.example.hasnet", permissions=("INTERNET",))

    def main(self, ctx):
        return {"groups": sorted(ctx.task.credentials.groups)}


class TestPermissionMapping:
    def test_internet_maps_to_inet_gid(self):
        manifest = AppManifest("x", permissions=("INTERNET",))
        assert permission_groups(manifest) == (3003,)

    def test_unknown_permissions_ignored(self):
        manifest = AppManifest("x", permissions=("CAMERA", "INTERNET"))
        assert permission_groups(manifest) == (3003,)

    def test_mapping_covers_the_network_gids(self):
        assert PERMISSION_GIDS["INTERNET"] == 3003
        assert PERMISSION_GIDS["BLUETOOTH"] == 3001


class TestEnforcement:
    def test_app_without_internet_cannot_create_inet_socket(
            self, native_world):
        running = native_world.install_and_launch(_NoNetApp())
        running.run()
        with pytest.raises(SyscallError) as exc:
            running.ctx.libc.socket(AF_INET, SOCK_STREAM, 0)
        assert "EACCES" in str(exc.value)

    def test_app_with_internet_can(self, native_world):
        running = native_world.install_and_launch(_NetApp())
        result = running.run()
        assert 3003 in result["groups"]
        running.ctx.libc.socket(AF_INET, SOCK_STREAM, 0)

    def test_bluetooth_needs_its_own_gid(self, native_world):
        running = native_world.install_and_launch(_NetApp())
        running.run()
        with pytest.raises(SyscallError):
            running.ctx.libc.socket(PF_BLUETOOTH, SOCK_DGRAM, 0)

    def test_unix_sockets_need_no_permission(self, native_world):
        running = native_world.install_and_launch(_NoNetApp())
        running.run()
        running.ctx.libc.socket(AF_UNIX, SOCK_STREAM, 0)

    def test_root_daemons_exempt(self, native_world):
        from repro.kernel.libc import Libc
        from repro.kernel.process import Credentials

        task = native_world.kernel.spawn_task("daemon", Credentials(0))
        Libc(native_world.kernel, task).socket(AF_INET, SOCK_STREAM, 0)

    def test_enforced_in_the_cvm_too(self, anception_world):
        """The proxy carries the same groups: redirected socket calls
        re-apply the identical check in the container."""
        running = anception_world.install_and_launch(_NoNetApp())
        running.run()
        with pytest.raises(SyscallError) as exc:
            running.ctx.libc.socket(AF_INET, SOCK_STREAM, 0)
        assert "EACCES" in str(exc.value)

    def test_exploits_request_what_they_need(self):
        from repro.exploits.sock_sendpage import SockSendpage

        assert "BLUETOOTH" in SockSendpage().manifest.permissions
