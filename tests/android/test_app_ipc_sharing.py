"""App-to-app binder IPC, shared UIDs, and the CVM firewall."""

import pytest

from repro.android.app import App, AppManifest
from repro.errors import SyscallError
from repro.kernel.net import AF_INET, SOCK_STREAM


class ProviderApp(App):
    """Exports a binder endpoint serving a tiny key-value store."""

    manifest = AppManifest("com.example.provider")

    def main(self, ctx):
        self.store = {}

        def handler(method, payload, sender_task):
            if method == "put":
                self.store[payload["key"]] = payload["value"]
                return {"status": "stored"}
            if method == "get":
                return {"value": self.store.get(payload["key"])}
            return {"status": "unknown"}

        self.endpoint = ctx.export_service(handler)
        return {"endpoint": self.endpoint}


class ConsumerApp(App):
    manifest = AppManifest("com.example.consumer")

    def main(self, ctx):
        ctx.call_app("com.example.provider", "put",
                     {"key": "greeting", "value": "hello-ipc"})
        reply = ctx.call_app("com.example.provider", "get",
                             {"key": "greeting"})
        return reply


class TestAppToAppBinder:
    def test_roundtrip_native(self, native_world):
        native_world.install_and_launch(ProviderApp()).run()
        result = native_world.install_and_launch(ConsumerApp()).run()
        assert result == {"value": "hello-ipc"}

    def test_roundtrip_anception(self, anception_world):
        anception_world.install_and_launch(ProviderApp()).run()
        result = anception_world.install_and_launch(ConsumerApp()).run()
        assert result == {"value": "hello-ipc"}

    def test_proceeds_on_host_under_anception(self, anception_world):
        """App-to-app IPC never crosses into the CVM (Section III-D)."""
        from repro.core.policy import Decision

        anception_world.install_and_launch(ProviderApp()).run()
        anception_world.install_and_launch(ConsumerApp()).run()
        ioctl_decisions = [
            d for (_pid, name, d) in anception_world.anception.decision_log
            if name == "ioctl"
        ]
        assert Decision.REDIRECT not in ioctl_decisions

    def test_endpoint_visible_in_service_manager(self, native_world):
        native_world.install_and_launch(ProviderApp()).run()
        assert native_world.system.service_manager.get(
            "app:com.example.provider"
        ) is not None

    def test_unknown_app_endpoint_enoent(self, native_world):
        running = native_world.install_and_launch(ConsumerApp())
        with pytest.raises(SyscallError):
            running.ctx.call_app("com.example.ghost", "get", {})


class _SharedA(App):
    manifest = AppManifest("com.suite.alpha", shared_user_id="com.suite")

    def main(self, ctx):
        ctx.libc.write_file(ctx.data_path("shared-note"), b"from-alpha")
        return {"uid": ctx.libc.getuid()}


class _SharedB(App):
    manifest = AppManifest("com.suite.beta", shared_user_id="com.suite")

    def main(self, ctx):
        # Same UID: may read its sibling's private file.
        return {
            "uid": ctx.libc.getuid(),
            "sibling_note": ctx.libc.read_file(
                "/data/data/com.suite.alpha/shared-note"
            ),
        }


class _LoneApp(App):
    manifest = AppManifest("com.other.lone")

    def main(self, ctx):
        return ctx.libc.read_file("/data/data/com.suite.alpha/shared-note")


class TestSharedUid:
    def test_same_shared_id_same_uid(self, native_world):
        a = native_world.install_and_launch(_SharedA()).run()
        b = native_world.install_and_launch(_SharedB()).run()
        assert a["uid"] == b["uid"]
        assert b["sibling_note"] == b"from-alpha"

    def test_shared_uid_works_under_anception(self, anception_world):
        anception_world.install_and_launch(_SharedA()).run()
        b = anception_world.install_and_launch(_SharedB()).run()
        assert b["sibling_note"] == b"from-alpha"

    def test_foreign_app_still_denied(self, native_world):
        native_world.install_and_launch(_SharedA()).run()
        running = native_world.install_and_launch(_LoneApp())
        with pytest.raises(SyscallError) as exc:
            running.run()
        assert "EACCES" in str(exc.value)

    def test_distinct_shared_ids_distinct_uids(self, native_world):
        class OtherSuite(App):
            manifest = AppManifest("com.else.app", shared_user_id="com.else")

            def main(self, ctx):
                return {"uid": ctx.libc.getuid()}

        a = native_world.install_and_launch(_SharedA()).run()
        c = native_world.install_and_launch(OtherSuite()).run()
        assert a["uid"] != c["uid"]


class _DialOutApp(App):
    manifest = AppManifest("com.example.dialer2")

    def __init__(self, address):
        self.address = address
        self._manifest = AppManifest(
            f"com.example.dialout{abs(hash(address)) % 1000}",
            permissions=("INTERNET",),
        )

    @property
    def manifest(self):
        return self._manifest

    def main(self, ctx):
        fd = ctx.libc.socket(AF_INET, SOCK_STREAM, 0)
        ctx.libc.connect(fd, self.address)
        ctx.libc.send(fd, b"ping")
        return {"reply": ctx.libc.recv(fd, 16)}


class _Echo:
    def handle_data(self, conn, data):
        return b"pong"


class TestCvmFirewall:
    def test_allowed_address_passes(self, anception_world):
        anception_world.internet.register_server(("good.example", 443),
                                                 _Echo())
        anception_world.anception.set_firewall(allow=[("good.example", 443)])
        result = anception_world.install_and_launch(
            _DialOutApp(("good.example", 443))
        ).run()
        assert result["reply"] == b"pong"

    def test_disallowed_address_refused(self, anception_world):
        anception_world.internet.register_server(("evil.example", 80),
                                                 _Echo())
        anception_world.anception.set_firewall(allow=[("good.example", 443)])
        running = anception_world.install_and_launch(
            _DialOutApp(("evil.example", 80))
        )
        with pytest.raises(SyscallError) as exc:
            running.run()
        assert "ECONNREFUSED" in str(exc.value)
        assert anception_world.cvm.kernel.network.blocked_connections

    def test_rule_callable_form(self, anception_world):
        anception_world.internet.register_server(("c2.example", 80), _Echo())
        anception_world.anception.set_firewall(
            rule=lambda address: not address[0].startswith("c2.")
        )
        running = anception_world.install_and_launch(
            _DialOutApp(("c2.example", 80))
        )
        with pytest.raises(SyscallError):
            running.run()

    def test_clearing_firewall_restores_access(self, anception_world):
        anception_world.internet.register_server(("open.example", 80),
                                                 _Echo())
        anception_world.anception.set_firewall(allow=[])
        anception_world.anception.set_firewall()
        result = anception_world.install_and_launch(
            _DialOutApp(("open.example", 80))
        ).run()
        assert result["reply"] == b"pong"

    def test_firewall_survives_cvm_reboot(self, anception_world,
                                          enrolled_ctx):
        from repro.exploits.sock_sendpage import SockSendpage

        anception_world.anception.set_firewall(allow=[])
        running = anception_world.install_and_launch(SockSendpage())
        running.run()
        anception_world.anception.reboot_cvm()
        assert anception_world.cvm.kernel.network.firewall is not None
