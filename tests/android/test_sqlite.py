"""The embedded SQLite-like engine."""

import pytest

from repro.android.sqlite import Database, Transactionless
from repro.errors import SimulationError
from repro.kernel.kernel import Machine
from repro.kernel.libc import Libc
from repro.kernel.process import Credentials


@pytest.fixture
def libc():
    kernel = Machine(total_mb=128).kernel
    task = kernel.spawn_task("dbapp", Credentials(10001))
    task.cwd = "/data/local/tmp"
    return Libc(kernel, task)


@pytest.fixture
def db(libc):
    database = Database(libc, "/data/local/tmp/test.db")
    database.create_table("t")
    return database


class TestSchema:
    def test_create_and_list_tables(self, db):
        db.create_table("second")
        assert db.tables() == ["second", "t"]

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SimulationError):
            db.create_table("t")

    def test_insert_into_missing_table_rejected(self, db):
        with pytest.raises(SimulationError):
            db.insert("ghost", b"row")


class TestRows:
    def test_insert_returns_row_ids(self, db):
        assert db.insert("t", b"one") == 1
        assert db.insert("t", b"two") == 2

    def test_select_all_returns_rows_in_order(self, db):
        db.insert("t", b"alpha")
        db.insert("t", b"beta")
        assert db.select_all("t") == [b"alpha", b"beta"]

    def test_row_count(self, db):
        for i in range(5):
            db.insert("t", b"r")
        assert db.row_count("t") == 5

    def test_rows_span_pages(self, db):
        row = b"x" * 500
        for _ in range(20):  # 20 * 502 bytes > one 4096B page
            db.insert("t", row)
        assert db.select_all("t") == [row] * 20

    def test_variable_length_rows(self, db):
        rows = [bytes([i]) * (i + 1) for i in range(30)]
        for row in rows:
            db.insert("t", row)
        assert db.select_all("t") == rows


class TestTransactions:
    def test_commit_outside_transaction_rejected(self, db):
        with pytest.raises(Transactionless):
            db.commit()

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(SimulationError):
            db.begin()

    def test_commit_writes_journal(self, db, libc):
        db.begin()
        db.insert("t", b"row")
        db.commit()
        assert libc.read_file("/data/local/tmp/test.db-journal")

    def test_checkpoint_drops_journal(self, db, libc):
        db.begin()
        db.insert("t", b"row")
        db.commit()
        db.checkpoint()
        from repro.errors import SyscallError

        with pytest.raises(SyscallError):
            libc.read_file("/data/local/tmp/test.db-journal")


class TestPersistence:
    def test_data_survives_reopen_after_checkpoint(self, libc):
        db = Database(libc, "/data/local/tmp/p.db")
        db.create_table("t")
        db.begin()
        db.insert("t", b"durable")
        db.commit()
        db.checkpoint()
        db.close()

        reopened = Database(libc, "/data/local/tmp/p.db")
        assert reopened.select_all("t") == [b"durable"]
        assert reopened.row_count("t") == 1

    def test_uncheckpointed_data_not_on_disk(self, libc):
        db = Database(libc, "/data/local/tmp/q.db")
        db.create_table("t")
        db.begin()
        db.insert("t", b"cached-only")
        db.commit()
        db.close()

        # Without checkpoint neither data pages nor the catalog hit the
        # file: a reopen sees the pre-transaction (empty) database.
        reopened = Database(libc, "/data/local/tmp/q.db")
        assert reopened.tables() == []


class TestCosts:
    def test_insert_charges_cpu(self, db, libc):
        clock = libc.kernel.clock
        db.begin()
        before = clock.now_ns
        db.insert("t", b"row")
        assert clock.now_ns > before

    def test_in_transaction_inserts_make_no_syscalls(self, db, libc):
        """Row inserts hit the page cache, not the kernel."""
        kernel = libc.kernel
        db.begin()
        db.insert("t", b"warm")  # first insert may load a page
        kernel.syscall_log = []
        kernel.syscall_log_enabled = True
        try:
            for _ in range(50):
                db.insert("t", b"row")
        finally:
            kernel.syscall_log_enabled = False
        assert kernel.syscall_log == []
