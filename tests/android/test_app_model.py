"""Installer, zygote, app context: the app lifecycle."""

import pytest

from repro.android.app import App, AppManifest
from repro.errors import SimulationError, SyscallError
from repro.kernel.process import Credentials, FIRST_APP_UID
from repro.world import AnceptionWorld, NativeWorld


class DemoApp(App):
    manifest = AppManifest(
        "com.demo.app",
        permissions=("INTERNET",),
        initial_data={"config.json": b'{"mode":"demo"}'},
    )

    def main(self, ctx):
        return {"pid": ctx.libc.getpid()}


@pytest.fixture
def world():
    return NativeWorld()


class TestInstaller:
    def test_uid_allocation_sequential(self, world):
        first = world.install(DemoApp())

        class SecondApp(App):
            manifest = AppManifest("com.demo.second")

            def main(self, ctx):
                return None

        second = world.install(SecondApp())
        assert first.uid == FIRST_APP_UID
        assert second.uid == FIRST_APP_UID + 1

    def test_code_placed_in_data_app(self, world):
        record = world.install(DemoApp())
        assert record.code_path == "/data/app/com.demo.app.apk"
        inode = world.kernel.vfs.resolve(record.code_path, Credentials(0))
        assert bytes(inode.data).startswith(b"\x7fELF")

    def test_code_not_writable_by_app(self, world):
        from repro.kernel import vfs

        record = world.install(DemoApp())
        app_creds = Credentials(record.uid)
        with pytest.raises(SyscallError):
            world.kernel.vfs.open(record.code_path, vfs.O_WRONLY, app_creds)

    def test_data_dir_private_to_app(self, world):
        record = world.install(DemoApp())
        stranger = Credentials(record.uid + 1)
        with pytest.raises(SyscallError):
            world.kernel.vfs.resolve(
                f"{record.data_dir}/config.json", stranger
            )

    def test_initial_data_unpacked(self, world):
        record = world.install(DemoApp())
        inode = world.kernel.vfs.resolve(
            f"{record.data_dir}/config.json", Credentials(record.uid)
        )
        assert bytes(inode.data) == b'{"mode":"demo"}'

    def test_double_install_rejected(self, world):
        world.install(DemoApp())
        with pytest.raises(SimulationError):
            world.install(DemoApp())

    def test_package_manager_learns_of_install(self, world):
        world.install(DemoApp())
        pm = world.system.service("package")
        assert "com.demo.app" in pm.packages

    def test_uninstall_removes_code(self, world):
        record = world.install(DemoApp())
        world.installer.uninstall("com.demo.app")
        assert not world.kernel.vfs.exists(record.code_path, Credentials(0))


class TestZygote:
    def test_launch_requires_install(self, world):
        with pytest.raises(SimulationError):
            world.launch(DemoApp())

    def test_launch_sets_identity(self, world):
        record = world.install(DemoApp())
        running = world.launch(DemoApp())
        task = running.task
        assert task.credentials.uid == record.uid
        assert task.launch_uid == record.uid
        assert task.cwd == record.data_dir
        assert task.name == "com.demo.app"

    def test_app_runs_and_returns(self, world):
        world.install(DemoApp())
        running = world.launch(DemoApp())
        result = running.run()
        assert result["pid"] == running.pid

    def test_native_launch_has_no_redirection(self, world):
        world.install(DemoApp())
        running = world.launch(DemoApp())
        assert running.task.redirection_entry == 0

    def test_anception_launch_enrolls(self):
        world = AnceptionWorld()
        world.install(DemoApp())
        running = world.launch(DemoApp())
        assert running.task.redirection_entry == 1
        assert running.task.proxy is not None

    def test_run_checked_captures_crash(self, world):
        class CrashingApp(App):
            manifest = AppManifest("com.demo.crash")

            def main(self, ctx):
                raise SyscallError(13, "boom")

        world.install(CrashingApp())
        running = world.launch(CrashingApp())
        assert running.run_checked() is None
        assert running.exception is not None


class TestAppContext:
    def test_data_path_helper(self, world):
        world.install(DemoApp())
        ctx = world.launch(DemoApp()).ctx
        assert ctx.data_path("f.txt") == "/data/data/com.demo.app/f.txt"

    def test_binder_fd_lazy_and_cached(self, world):
        world.install(DemoApp())
        ctx = world.launch(DemoApp()).ctx
        fd1 = ctx.binder_fd
        fd2 = ctx.binder_fd
        assert fd1 == fd2

    def test_call_service_via_context(self, world):
        world.install(DemoApp())
        ctx = world.launch(DemoApp()).ctx
        reply = ctx.call_service("sensor", "read_accelerometer")
        assert reply["z"] == pytest.approx(9.81)

    def test_compute_charges_clock(self, world):
        world.install(DemoApp())
        ctx = world.launch(DemoApp()).ctx
        before = world.clock.now_ns
        ctx.compute(100)
        assert world.clock.now_ns - before == 100 * world.machine.costs.cpu_unit_ns
