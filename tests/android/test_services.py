"""System services: catalogue partition and individual behaviours."""

import pytest

from repro.android.services.base import Service, ServiceCatalog
from repro.world import NativeWorld


@pytest.fixture
def world():
    return NativeWorld()


class TestCatalogue:
    def test_framework_total_matches_paper(self):
        assert ServiceCatalog.total_lines() == 181_260

    def test_ui_lines_match_paper(self):
        assert ServiceCatalog.ui_lines() == 72_542

    def test_delegated_lines_match_paper(self):
        assert ServiceCatalog.delegated_lines() == 108_718

    def test_deprivileged_fraction_about_60_percent(self):
        fraction = ServiceCatalog.delegated_lines() / ServiceCatalog.total_lines()
        assert 0.59 < fraction < 0.61

    def test_every_service_declares_loc(self):
        assert all(s.lines_of_code > 0 for s in ServiceCatalog.all_types())

    def test_partition_is_exhaustive_and_disjoint(self):
        ui = set(ServiceCatalog.ui_types())
        delegated = set(ServiceCatalog.delegated_types())
        assert not ui & delegated
        assert ui | delegated == set(ServiceCatalog.all_types())

    def test_vold_is_delegated_root_daemon(self):
        from repro.android.services.vold import VoldService

        assert VoldService in ServiceCatalog.delegated_types()
        assert VoldService.uid == 0

    def test_ui_services_are_exactly_four(self):
        names = {s.name for s in ServiceCatalog.ui_types()}
        assert names == {"window", "input", "activity", "surfaceflinger"}


class TestServiceBehaviour:
    def test_location_fix(self, world):
        service = world.system.service("location")
        fix = service.handle_transaction("get_fix", {}, service.task)
        assert set(fix) == {"lat", "lon", "accuracy_m"}

    def test_package_registry(self, world):
        pm = world.system.service("package")
        pm.register_package("com.x", 10001, "/data/app/com.x.apk")
        info = pm.handle_transaction(
            "get_package_info", {"package": "com.x"}, pm.task
        )
        assert info["found"]
        assert info["uid"] == 10001

    def test_package_unknown_not_found(self, world):
        pm = world.system.service("package")
        info = pm.handle_transaction(
            "get_package_info", {"package": "ghost"}, pm.task
        )
        assert not info["found"]

    def test_power_wakelocks(self, world):
        power = world.system.service("power")
        power.handle_transaction("acquire_wakelock", {"tag": "t"}, power.task)
        assert (power.task.pid, "t") in power.wakelocks
        power.handle_transaction("release_wakelock", {"tag": "t"}, power.task)
        assert not power.wakelocks

    def test_audio_volume_clamped(self, world):
        audio = world.system.service("audio")
        reply = audio.handle_transaction("set_volume", {"volume": 99},
                                         audio.task)
        assert reply["volume"] == 15

    def test_clipboard_roundtrip(self, world):
        clip = world.system.service("clipboard")
        clip.handle_transaction("set_clip", {"text": "copied"}, clip.task)
        reply = clip.handle_transaction("get_clip", {}, clip.task)
        assert reply["text"] == "copied"

    def test_notification_post_and_cancel(self, world):
        notif = world.system.service("notification")
        notif.handle_transaction("post", {"text": "hello"}, notif.task)
        assert len(notif.posted) == 1
        notif.handle_transaction("cancel_all", {}, notif.task)
        assert notif.posted == []

    def test_activity_tracking(self, world):
        activity = world.system.service("activity")
        activity.handle_transaction(
            "publish_activity", {"component": "com.x/.Main"}, activity.task
        )
        reply = activity.handle_transaction("get_running_apps", {},
                                            activity.task)
        assert "com.x/.Main" in reply["apps"]

    def test_services_have_heap_pages(self, world):
        vold = world.system.service("vold")
        assert vold.task.address_space.resident_pages() >= Service.HEAP_PAGES

    def test_call_log_records(self, world):
        sensor = world.system.service("sensor")
        sensor.handle_transaction("list_sensors", {}, sensor.task)
        assert sensor.call_log[-1][0] == "list_sensors"

    def test_window_manager_headless_refuses_ui(self):
        """UI methods on a headless instance fail cleanly."""
        from repro.errors import SyscallError
        from repro.kernel.kernel import Machine
        from repro.android.framework import AndroidSystem

        machine = Machine(total_mb=128)
        # ui_only profile without a ui_stack is impossible; build the
        # service directly to model the headless degenerate case.
        from repro.android.services.ui_services import WindowManagerService

        wm = WindowManagerService(machine.kernel, ui_stack=None)
        with pytest.raises(SyscallError):
            wm.handle_transaction("create_window", {}, wm.task)
