"""Binder: transactions, service manager, the UI inspection hook."""

import pytest

from repro.android.binder import (
    BINDER_WRITE_READ,
    IOC_WAIT_INPUT_EVT,
    Transaction,
    is_ui_transaction,
)
from repro.errors import SyscallError
from repro.world import NativeWorld


@pytest.fixture
def world():
    return NativeWorld()


@pytest.fixture
def driver(world):
    return world.system.binder_driver


@pytest.fixture
def task(world):
    from repro.kernel.process import Credentials

    return world.kernel.spawn_task("client", Credentials(10001))


class TestTransaction:
    def test_payload_defaults_empty(self):
        assert Transaction("svc", "m").payload == {}

    def test_payload_size_tracks_content(self):
        small = Transaction("svc", "m", {"a": 1})
        large = Transaction("svc", "m", {"a": "x" * 500})
        assert large.payload_size > small.payload_size


class TestServiceManager:
    def test_lookup_registered_service(self, world):
        sm = world.system.service_manager
        assert sm.get("vold") is world.system.service("vold")

    def test_unknown_service_none(self, world):
        assert world.system.service_manager.get("ghost") is None

    def test_names_sorted(self, world):
        names = world.system.service_manager.names()
        assert names == sorted(names)

    def test_unregister(self, world):
        sm = world.system.service_manager
        sm.unregister("clipboard")
        assert sm.get("clipboard") is None


class TestTransact:
    def test_roundtrip_to_service(self, driver, task):
        txn = Transaction("location", "get_fix")
        reply = driver.transact(task, txn)
        assert reply["lat"] == pytest.approx(42.2808)
        assert txn.sender_pid == task.pid

    def test_unknown_target_enoent(self, driver, task):
        with pytest.raises(SyscallError):
            driver.transact(task, Transaction("ghost", "m"))

    def test_unknown_method_einval(self, driver, task):
        with pytest.raises(SyscallError):
            driver.transact(task, Transaction("location", "no_such"))

    def test_non_transaction_arg_einval(self, driver, task):
        with pytest.raises(SyscallError):
            driver.transact(task, {"not": "a transaction"})

    def test_transaction_log_records(self, driver, task):
        driver.transact(task, Transaction("power", "acquire_wakelock"))
        assert (task.pid, "power", "acquire_wakelock") in driver.transaction_log

    def test_ui_target_charged_at_ui_rate(self, world, driver, task):
        before = world.clock.now_ns
        driver.transact(task, Transaction("window", "get_display_info"))
        ui_cost = world.clock.now_ns - before
        before = world.clock.now_ns
        driver.transact(task, Transaction("location", "get_fix"))
        binder_cost = world.clock.now_ns - before
        assert ui_cost < binder_cost

    def test_read_write_rejected(self, driver):
        with pytest.raises(SyscallError):
            driver.read(None, 10)
        with pytest.raises(SyscallError):
            driver.write(None, b"x")


class TestWaitInput:
    def test_wait_input_pops_event(self, world, driver, task):
        window = world.ui.create_window(task, "w")
        world.ui.inject_text("typed")
        event = driver.ioctl(task, None, IOC_WAIT_INPUT_EVT, None)
        assert event.text == "typed"

    def test_wait_input_without_window_enoent(self, driver, task):
        with pytest.raises(SyscallError):
            driver.ioctl(task, None, IOC_WAIT_INPUT_EVT, None)

    def test_unknown_ioctl_einval(self, driver, task):
        with pytest.raises(SyscallError):
            driver.ioctl(task, None, 0xBEEF, None)


class TestUiInspection:
    def test_wait_input_is_ui(self):
        assert is_ui_transaction(set(), IOC_WAIT_INPUT_EVT, None)

    def test_ui_target_is_ui(self):
        assert is_ui_transaction(
            {"window"}, BINDER_WRITE_READ, Transaction("window", "m")
        )

    def test_non_ui_target_is_not_ui(self):
        assert not is_ui_transaction(
            {"window"}, BINDER_WRITE_READ, Transaction("location", "m")
        )

    def test_non_binder_request_is_not_ui(self):
        assert not is_ui_transaction({"window"}, 0x1234, None)
