"""logcat: the payload-backed log pump."""

import pytest

from repro.android.logcat import LOG_DEVICE_PATH, start_system_logcat
from repro.kernel.kernel import Machine
from repro.kernel.libc import Libc
from repro.kernel.process import Credentials
from repro.world import NativeWorld


@pytest.fixture
def world():
    return NativeWorld()


class TestLogcatPayload:
    def test_pump_copies_log_to_file(self, world):
        world.kernel.log_device.append("vold", "signal 11, fault index -7")
        daemon = start_system_logcat(world.kernel, "/data/local/tmp/out.log")
        daemon.pump()
        libc = Libc(world.kernel, daemon.task)
        content = libc.read_file("/data/local/tmp/out.log").decode()
        assert "fault index -7" in content

    def test_pump_appends_across_calls(self, world):
        daemon = start_system_logcat(world.kernel, "/data/local/tmp/out.log")
        world.kernel.log_device.append("a", "first")
        daemon.pump()
        world.kernel.log_device.append("a", "second")
        daemon.pump()
        libc = Libc(world.kernel, daemon.task)
        content = libc.read_file("/data/local/tmp/out.log").decode()
        assert "first" in content
        assert "second" in content

    def test_exec_of_logcat_binary_runs_payload(self, world):
        """fork/exec /system/bin/logcat drives the registered payload."""
        from repro.kernel.loader import run_payload

        world.kernel.log_device.append("t", "hello-exec")
        task = world.kernel.spawn_task("parent", Credentials(10001))
        libc = Libc(world.kernel, task)
        child = world.kernel.pids.require(libc.fork())
        image = world.kernel.syscall(
            child, "execve", "/system/bin/logcat", ("/data/local/tmp/e.log",)
        )
        run_payload(world.kernel, child, image)
        content = libc.read_file("/data/local/tmp/e.log").decode()
        assert "hello-exec" in content

    def test_daemon_alive_flag(self, world):
        daemon = start_system_logcat(world.kernel)
        assert daemon.alive
        world.kernel.reap_task(daemon.task)
        assert not daemon.alive

    def test_log_device_path_registered(self, world):
        assert world.kernel.vfs.exists(LOG_DEVICE_PATH, Credentials(0))
