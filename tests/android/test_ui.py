"""UI stack: windows, focus, routing, and confidentiality of input."""

import pytest

from repro.android.ui import InputEvent, UIStack
from repro.errors import SyscallError
from repro.kernel.devices import InputDevice
from repro.kernel.kernel import Machine
from repro.kernel.process import Credentials


@pytest.fixture
def kernel():
    return Machine(total_mb=64).kernel


@pytest.fixture
def ui():
    return UIStack(input_device=InputDevice())


def make_task(kernel, name="app", uid=10001):
    return kernel.spawn_task(name, Credentials(uid))


class TestWindows:
    def test_first_window_gets_focus(self, ui, kernel):
        window = ui.create_window(make_task(kernel), "w1")
        assert ui.focused_window is window

    def test_focus_switching(self, ui, kernel):
        w1 = ui.create_window(make_task(kernel), "w1")
        w2 = ui.create_window(make_task(kernel), "w2")
        assert ui.focused_window is w1
        ui.set_focus_by_window(w2.window_id)
        assert ui.focused_window is w2

    def test_focus_by_task(self, ui, kernel):
        t1 = make_task(kernel)
        t2 = make_task(kernel)
        ui.create_window(t1, "w1")
        ui.create_window(t2, "w2")
        ui.set_focus_by_task(t2)
        assert ui.focused_window.owner_task is t2

    def test_focus_unknown_window_enoent(self, ui):
        with pytest.raises(SyscallError):
            ui.set_focus_by_window(999)

    def test_destroy_windows_clears_focus(self, ui, kernel):
        task = make_task(kernel)
        ui.create_window(task, "w")
        ui.destroy_windows_of(task)
        assert ui.focused_window is None
        assert ui.window_of(task) is None


class TestInputRouting:
    def test_text_reaches_focused_window_only(self, ui, kernel):
        t1, t2 = make_task(kernel), make_task(kernel)
        w1 = ui.create_window(t1, "w1")
        w2 = ui.create_window(t2, "w2")
        ui.inject_text("secret")
        assert len(w1.event_queue) == 1
        assert w2.event_queue == []

    def test_wait_input_pops_in_order(self, ui, kernel):
        task = make_task(kernel)
        ui.create_window(task, "w")
        ui.inject_text("first")
        ui.inject_text("second")
        assert ui.wait_input(task).text == "first"
        assert ui.wait_input(task).text == "second"

    def test_wait_input_empty_returns_none(self, ui, kernel):
        task = make_task(kernel)
        ui.create_window(task, "w")
        assert ui.wait_input(task) is None

    def test_wait_input_without_window_enoent(self, ui, kernel):
        with pytest.raises(SyscallError):
            ui.wait_input(make_task(kernel))

    def test_touch_events(self, ui, kernel):
        task = make_task(kernel)
        ui.create_window(task, "w")
        ui.inject_touch(100, 200)
        event = ui.wait_input(task)
        assert (event.x, event.y) == (100, 200)

    def test_password_events_mask_repr(self):
        event = InputEvent("text", text="hunter2", is_password_field=True)
        assert "hunter2" not in repr(event)

    def test_input_device_sees_raw_stream(self, ui, kernel):
        """The host input device observes everything — which is exactly
        why it must never exist in the CVM."""
        task = make_task(kernel)
        ui.create_window(task, "w")
        ui.inject_text("password", is_password_field=True)
        events = ui.input_device.drain()
        assert events[0].text == "password"

    def test_no_input_without_focus_is_dropped(self, ui):
        ui.inject_text("into-the-void")
        assert ui.delivered_events == []


class TestFrames:
    def test_submit_frame_counts(self, ui, kernel):
        task = make_task(kernel)
        window = ui.create_window(task, "w")
        ui.submit_frame(task, b"pixels")
        assert window.frames_submitted == 1

    def test_submit_without_window_enoent(self, ui, kernel):
        with pytest.raises(SyscallError):
            ui.submit_frame(make_task(kernel), b"x")

    def test_framebuffer_receives_composition(self, kernel):
        from repro.kernel.devices import FramebufferDevice

        fb = FramebufferDevice(kernel)
        ui = UIStack(input_device=InputDevice(), framebuffer=fb)
        task = make_task(kernel)
        ui.create_window(task, "w")
        ui.submit_frame(task, b"RGBA")
        assert bytes(fb._buffer[:4]) == b"RGBA"
