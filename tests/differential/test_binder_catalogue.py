"""Run every binder catalogue script in all three modes; all must agree.

The modes are native, synchronous delegation, and batched-async binder
delegation (tri_worlds' third world runs with the binder ring on); each
script's normalized outcome stream — replies, errnos, optimistic
oneway ``None``s — and the per-driver transaction log, normalized to
``(target, method)`` pairs, must be identical across all of them.

Scripts stay within one delegation domain each: system-service targets
execute in the CVM's binder driver under Anception (and the host's
natively), while app-exported ``app:*`` endpoints stay on the host in
every mode (Section III-D), so each script compares exactly one
driver's log.
"""

import pytest

from repro.android.app import App, AppManifest

from tests.differential.catalogue import BINDER_APP_PACKAGE, BINDER_SCRIPTS
from tests.differential.harness import run_modes


class BinderCatApp(App):
    manifest = AppManifest(
        BINDER_APP_PACKAGE,
        permissions=("INTERNET",),
        initial_data={"seed.txt": b"catalogue-seed"},
    )

    def main(self, ctx):
        return {"ok": True}


def _normalized_log(driver):
    """Transaction log as (target, method) pairs.

    Sender pids are world-specific (delegated transactions are stamped
    with the CVM proxy's pid), so equivalence is on what was called,
    in order — never on who the driver thinks called it.
    """
    return [(target, method) for _pid, target, method
            in driver.transaction_log]


def _service_driver(world):
    """The driver that executes system-service transactions."""
    anception = getattr(world, "anception", None)
    if anception is not None:
        return anception.cvm.android.binder_driver
    return world.system.binder_driver


def _app_driver(world):
    """The driver that executes app-to-app transactions (always host)."""
    return world.system.binder_driver


@pytest.mark.parametrize("label", sorted(BINDER_SCRIPTS))
def test_binder_script_equivalent_in_all_modes(tri_worlds, label):
    entry = BINDER_SCRIPTS[label]
    app_domain = label == "binder-register-lookup"
    halves = {}
    logs = {}
    for mode, world in tri_worlds.items():
        halves[mode] = run_modes({mode: world}, entry["script"],
                                 BinderCatApp)[mode]
        driver = (_app_driver if app_domain else _service_driver)(world)
        logs[mode] = _normalized_log(driver)
    reference = halves["native"]
    for mode, half in halves.items():
        assert half[0] == reference[0], (
            f"{label}: outcome stream diverges ({mode} vs native)"
        )
    for mode, log in logs.items():
        assert log == logs["native"], (
            f"{label}: transaction log diverges ({mode} vs native)"
        )


def test_oneway_burst_defers_until_fence(tri_worlds):
    """The batched world really batches: a oneway burst stays staged
    (zero drains) until the reply-carrying call fences it."""
    world = tri_worlds["write-behind"]
    running = world.install_and_launch(BinderCatApp())
    running.run()
    ctx = running.ctx
    ring = world.anception.binder_ring
    for _ in range(4):
        ctx.call_service_oneway("location", "get_fix", {})
    assert ring.drains == 0
    assert ring.enqueued == 4
    ctx.call_service("power", "acquire_wakelock", {})
    assert ring.drains == 1
    # All four staged oneways landed before the sync call's transaction.
    log = _normalized_log(world.anception.cvm.android.binder_driver)
    assert log == [("location", "get_fix")] * 4 + [
        ("power", "acquire_wakelock")
    ]
