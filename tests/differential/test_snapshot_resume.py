"""Snapshot/resume as a fourth differential mode: restore ≡ boot.

Every catalogue script already agrees across native, synchronous
delegation, and fully-async delegation.  This suite adds the fourth
world: the script's first half runs on an async Anception world, the
world snapshots mid-script, the blob restores into a brand-new world
object, and the second half finishes there.  The normalized outcome
stream and the final VFS tree must match the other three modes exactly
— a snapshot boundary dropped at an arbitrary step is invisible to the
app.

The fault section pins the same property under an armed chaos plan:
the engine's trigger cursor and PRNG ride the snapshot, so a split run
fires the same faults at the same steps as a straight run.
"""

import pytest

from repro.android.app import App, AppManifest
from repro.faults.engine import FaultEngine
from repro.faults.plan import FaultPlan
from repro.world import AnceptionWorld, _World

from tests.differential.catalogue import BINDER_SCRIPTS, SCRIPTS
from tests.differential.harness import (
    H,
    P,
    SnapshotResume,
    data_kernel,
    run_modes,
    run_script,
    vfs_tree,
)


class CatApp(App):
    manifest = AppManifest(
        "com.catalogue.probe",
        permissions=("INTERNET",),
        initial_data={"seed.txt": b"catalogue-seed"},
    )

    def main(self, ctx):
        return {"ok": True}


class EchoServer:
    def handle_data(self, conn, data):
        return b"echo:" + data


@pytest.mark.parametrize("label", sorted(SCRIPTS))
def test_catalogue_script_survives_snapshot_boundary(quad_worlds, label):
    entry = SCRIPTS[label]
    if entry["needs_server"]:
        for world in quad_worlds.values():
            if isinstance(world, SnapshotResume):
                world = world.world
            world.internet.register_server(("echo.example", 7),
                                           EchoServer())
    halves = run_modes(quad_worlds, entry["script"], CatApp)
    reference = halves["native"]
    for mode, half in halves.items():
        assert half[0] == reference[0], (
            f"{label}: outcome stream diverges ({mode} vs native)"
        )
        assert half[1] == reference[1], (
            f"{label}: final VFS state diverges ({mode} vs native)"
        )


@pytest.mark.parametrize("label", sorted(BINDER_SCRIPTS))
def test_binder_script_survives_snapshot_boundary(tri_worlds, label):
    entry = BINDER_SCRIPTS[label]
    worlds = {
        "native": tri_worlds["native"],
        "snapshot-resume": SnapshotResume(
            AnceptionWorld(async_delegation=True, binder_ring=True)
        ),
    }
    halves = run_modes(worlds, entry["script"], CatApp)
    assert halves["snapshot-resume"][0] == halves["native"][0], (
        f"{label}: outcome stream diverges across the snapshot boundary"
    )


@pytest.mark.parametrize("split", [1, 3, 5, 7])
def test_split_point_is_invisible(split):
    """The same script agrees with itself wherever the boundary falls."""
    script = [
        ("open", P("s.txt"), 0o102, 0o600),
        ("write", H(0), b"alpha"),
        ("lseek", H(0), 0, 0),
        ("read", H(0), 5),
        ("write", H(0), b"beta"),
        ("fsync", H(0)),
        ("lseek", H(0), 0, 0),
        ("read", H(0), 16),
        ("close", H(0)),
    ]
    straight = run_modes(
        {"straight": AnceptionWorld(async_delegation=True,
                                    binder_ring=True)},
        script, CatApp,
    )["straight"]
    halves = run_modes(
        {"split": SnapshotResume(
            AnceptionWorld(async_delegation=True, binder_ring=True),
            split=split,
        )},
        script, CatApp,
    )["split"]
    assert halves == straight


FAULT_PLAN = "channel.corrupt:nth=4;channel.truncate:nth=9"

FAULT_SCRIPT = [
    ("open", P("f.txt"), 0o102, 0o600),
    ("write", H(0), b"x" * 128),
    ("lseek", H(0), 0, 0),
    ("read", H(0), 128),
    ("write", H(0), b"y" * 64),
    ("lseek", H(0), 0, 0),
    ("read", H(0), 192),
    ("fsync", H(0)),
    ("read", H(0), 16),
    ("close", H(0)),
]


class TestFaultScripts:
    """Mid-chaos snapshots resume with the fault cursor intact."""

    def _armed_world(self, seed):
        world = AnceptionWorld(async_delegation=True, binder_ring=True)
        engine = FaultEngine(FaultPlan.parse(FAULT_PLAN), seed=seed)
        engine.arm(world.clock)
        return world

    def _half(self, world, script, split=None):
        running = world.install_and_launch(CatApp())
        running.run()
        ctx = running.ctx
        if split is None:
            outcomes = run_script(ctx, script)
            world.anception.async_fence(ctx.libc.task)
            return outcomes, vfs_tree(data_kernel(world), ctx.data_dir)
        handles, outcomes = {}, []
        run_script(ctx, script, stop=split, handles=handles,
                   outcomes=outcomes)
        restored = _World.restore(world.snapshot())
        rctx = restored.zygote.launched[-1].ctx
        run_script(rctx, script, start=split, handles=handles,
                   outcomes=outcomes)
        restored.anception.async_fence(rctx.libc.task)
        return outcomes, vfs_tree(data_kernel(restored), rctx.data_dir)

    @pytest.mark.parametrize("split", [2, 4, 6])
    def test_fault_plan_fires_identically_across_boundary(self, split):
        straight = self._half(self._armed_world(7), FAULT_SCRIPT)
        resumed = self._half(self._armed_world(7), FAULT_SCRIPT,
                             split=split)
        assert resumed == straight

    def test_faults_actually_fired(self):
        outcomes, _tree = self._half(self._armed_world(7), FAULT_SCRIPT)
        statuses = {status for _s, _n, status, _v in outcomes}
        assert "errno" in statuses, (
            "the fault plan never fired; the resume pin is vacuous"
        )
