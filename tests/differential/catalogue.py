"""The syscall-coverage catalogue: one op-script per redirect surface.

Every redirect-class syscall the simulated kernel implements must be
exercised by at least one differential script here (or carry a
documented exemption in :data:`EXEMPT`).  The conformance suite in
``tests/core/test_syscall_conformance.py`` checks the catalogue's
coverage against the live redirect table, and
``tests/differential/test_catalogue.py`` runs every script in all three
modes — native, synchronous delegation, write-behind — asserting
identical outcomes, errnos, and final VFS trees.

Scripts use libc veneer names; :data:`SYSCALL_ALIASES` maps kernel
syscall names onto the veneer that reaches them (e.g. ``stat64`` is
served by the ``stat`` handler and veneer).
"""

from __future__ import annotations

from repro.kernel import vfs
from repro.kernel.net import AF_INET, SOCK_STREAM

from tests.differential.harness import H, P


TRUNC = vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC


SYSCALL_ALIASES = {
    # 64-bit / variant entry points served by the base handler+veneer.
    "stat64": "stat",
    "lstat64": "lstat",
    "fstat64": "fstat",
    "ftruncate64": "ftruncate",
    "_llseek": "lseek",
    "openat": "open",
    "creat": "open",
    "fchown32": "fchown",
    "sendto": "send",
    "recvfrom": "recv",
    # Veneers whose method name differs from the syscall's.
    "pread64": "pread",
    "pwrite64": "pwrite",
    "getdents": "listdir",
}
"""Kernel syscall name -> libc veneer exercising it."""


EXEMPT = {
    "bind": "server-side socket setup needs a live accept loop the "
            "scripted worlds do not run; exercised by the network unit "
            "and exploit suites",
    "listen": "server-side socket setup (see bind)",
    "accept": "server-side socket setup (see bind)",
    "shmctl": "segment control op; the get/at/dt lifecycle is covered "
              "differentially and shmctl by the shm unit suite",
    "getcwd": "cwd is mirrored host task state, never delegated",
    "chdir": "cwd is mirrored host task state, never delegated",
    "uname": "constant host identity string, no delegated state",
}
"""Redirect-class syscalls deliberately outside the catalogue, each
with the reason it cannot (or need not) run differentially."""


SCRIPTS = {
    "file-core": {
        "needs_server": False,
        "script": [
            ("open", P("cat-core.bin"), TRUNC, 0o644),
            ("write", H(0), b"0123456789abcdef"),
            ("pwrite", H(0), b"XYZ", 4),
            ("fsync", H(0)),
            ("lseek", H(0), 2, 0),
            ("read", H(0), 6),
            ("pread", H(0), 4, 0),
            ("fstat", H(0)),
            ("fchmod", H(0), 0o600),
            ("fchown", H(0), 0, 0),
            ("ftruncate", H(0), 8),
            ("fdatasync", H(0)),
            ("fence", H(0)),
            ("close", H(0)),
        ],
    },
    "file-vectored": {
        "needs_server": False,
        "script": [
            ("open", P("cat-vec.bin"), TRUNC, 0o644),
            ("writev", H(0), (b"aa", b"bbb", b"cccc")),
            ("lseek", H(0), 0, 0),
            ("readv", H(0), (2, 3, 4)),
            ("fence", H(0)),
            ("close", H(0)),
        ],
    },
    "file-meta": {
        "needs_server": False,
        "script": [
            ("mkdir", P("cat-dir"), 0o700),
            ("open", P("cat-dir/f.bin"), TRUNC, 0o644),
            ("write", H(1), b"meta-bytes"),
            ("close", H(1)),
            ("chmod", P("cat-dir/f.bin"), 0o640),
            ("chown", P("cat-dir/f.bin"), 0, 0),
            ("truncate", P("cat-dir/f.bin"), 4),
            ("symlink", P("cat-dir/f.bin"), P("cat-dir/link")),
            ("readlink", P("cat-dir/link")),
            ("lstat", P("cat-dir/link")),
            ("stat", P("cat-dir/f.bin")),
            ("access", P("cat-dir/f.bin"), 4),
            ("listdir", P("cat-dir")),
            ("rename", P("cat-dir/f.bin"), P("cat-dir/g.bin")),
            ("unlink", P("cat-dir/link")),
            ("unlink", P("cat-dir/g.bin")),
            ("rmdir", P("cat-dir")),
        ],
    },
    "net-echo": {
        "needs_server": True,
        "script": [
            ("socket", AF_INET, SOCK_STREAM, 0),
            ("connect", H(0), ("echo.example", 7)),
            ("send", H(0), b"catalogue-ping"),
            ("recv", H(0), 64),
            ("close", H(0)),
        ],
    },
    "sendfile-copy": {
        "needs_server": False,
        "script": [
            ("open", P("cat-src.bin"), TRUNC, 0o644),
            ("write", H(0), b"sendfile-payload"),
            ("fence", H(0)),
            ("open", P("cat-dst.bin"), TRUNC, 0o644),
            ("sendfile", H(3), H(0), 0, 8),
            ("close", H(3)),
            ("close", H(0)),
            ("read_file", P("cat-dst.bin")),
        ],
    },
    "ipc": {
        "needs_server": False,
        "script": [
            ("pipe",),
            ("write", H(0, 1), b"cat-pipe"),
            ("read", H(0, 0), 32),
            ("close", H(0, 1)),
            ("close", H(0, 0)),
            ("shmget", 0x77, 4096),
            ("shmat", H(5)),
            ("shmdt", H(6)),
        ],
    },
}
"""Named differential scripts; together they must cover every
non-exempt redirect-class syscall through its veneer."""


def covered_ops():
    """Every libc op name any catalogue script exercises."""
    ops = set()
    for entry in SCRIPTS.values():
        for step in entry["script"]:
            ops.add(step[0])
    return ops


# -- binder ioctl surface -------------------------------------------------
#
# The binder device is reached through ioctl, not per-call syscalls, so
# its conformance universe is the set of ioctl request codes in
# ``repro.android.binder.BINDER_IOCTL_REQUESTS``.  Every request the
# layer delegates must be exercised by at least one op-script below (or
# carry a documented exemption); the scripts run through the same
# ``run_modes`` grammar via the app-context fallback in the harness.

BINDER_EXEMPT = {
    "IOC_WAIT_INPUT_EVT": "UI/input wait is host-pinned by policy "
                          "(Listing 1): it never crosses into the CVM, "
                          "it only fences staged binder windows; "
                          "exercised by the UI and input unit suites",
}
"""Binder ioctl requests deliberately outside the catalogue, each with
the reason it cannot (or need not) run differentially."""


BINDER_APP_PACKAGE = "com.catalogue.probe"
"""The package the differential harness enrolls; ``call_app`` against
``app:<this>`` exercises the register/lookup path on the app's own
exported endpoint."""


def _echo_handler(method, payload, sender_task):
    """Deterministic app-endpoint handler (no pids in the reply)."""
    return {"echo": method, "keys": sorted(payload or {})}


BINDER_SCRIPTS = {
    # Each script stays within one delegation domain (system services
    # in the CVM, app endpoints on the host) so the per-driver
    # transaction-log comparison in test_binder_catalogue stays simple.
    "binder-transact": {
        "request": "BINDER_WRITE_READ",
        "script": [
            ("call_service", "location", "get_fix", {"blob": "x" * 112}),
            ("call_service", "power", "acquire_wakelock", {"tag": "cat"}),
            ("call_service", "power", "release_wakelock", {"tag": "cat"}),
            ("call_service", "location", "request_updates",
             {"interval_ms": 500}),
        ],
    },
    "binder-oneway": {
        "request": "BINDER_WRITE_READ",
        "script": [
            ("call_service_oneway", "location", "get_fix", {"n": 1}),
            ("call_service_oneway", "sensor", "read_accelerometer", {}),
            ("call_service_oneway", "power", "acquire_wakelock",
             {"tag": "ow"}),
            ("call_service_oneway", "power", "release_wakelock",
             {"tag": "ow"}),
            # the closing sync call is the fence-on-reply barrier: the
            # staged oneways must all land before its reply returns.
            ("call_service", "location", "get_fix", {"n": 2}),
        ],
    },
    "binder-reply-error": {
        "request": "BINDER_WRITE_READ",
        "script": [
            ("call_service", "location", "bogus_method", {}),
            ("call_service", "nosuchservice", "method", {}),
            ("call_service_oneway", "location", "bogus_method", {}),
            ("call_service_oneway", "nosuchservice", "method", {}),
            ("call_service", "location", "get_fix", {}),
        ],
    },
    "binder-register-lookup": {
        "request": "BINDER_WRITE_READ",
        "script": [
            ("export_service", _echo_handler),
            ("call_app", BINDER_APP_PACKAGE, "ping", {"k": 1}),
            ("call_app", "com.not.installed", "ping", {}),
        ],
    },
    "binder-large-parcel": {
        "request": "BINDER_WRITE_READ",
        "script": [
            ("call_service", "location", "get_fix", {"blob": "x" * 8192}),
            ("call_service_oneway", "location", "request_updates",
             {"blob": "y" * 8192}),
            ("call_service", "power", "acquire_wakelock", {}),
        ],
    },
}
"""Named binder differential scripts, each tagged with the ioctl
request it exercises; together they must cover every delegated binder
request code."""


def covered_binder_requests():
    """Every binder ioctl request name any binder script exercises."""
    return {entry["request"] for entry in BINDER_SCRIPTS.values()}
