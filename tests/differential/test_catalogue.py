"""Run every catalogue script in all three modes; everything must agree.

The modes are native, synchronous delegation, and write-behind
delegation; each script's normalized outcome stream and final VFS tree
must be identical across all of them — the transparency property of
Section III extended to the async windows.
"""

import pytest

from repro.android.app import App, AppManifest

from tests.differential.catalogue import SCRIPTS
from tests.differential.harness import run_modes


class CatApp(App):
    manifest = AppManifest(
        "com.catalogue.probe",
        permissions=("INTERNET",),
        initial_data={"seed.txt": b"catalogue-seed"},
    )

    def main(self, ctx):
        return {"ok": True}


class EchoServer:
    def handle_data(self, conn, data):
        return b"echo:" + data


@pytest.mark.parametrize("label", sorted(SCRIPTS))
def test_catalogue_script_equivalent_in_all_modes(tri_worlds, label):
    entry = SCRIPTS[label]
    if entry["needs_server"]:
        for world in tri_worlds.values():
            world.internet.register_server(("echo.example", 7), EchoServer())
    halves = run_modes(tri_worlds, entry["script"], CatApp)
    reference_label = "native"
    reference = halves[reference_label]
    for mode, half in halves.items():
        assert half[0] == reference[0], (
            f"{label}: outcome stream diverges "
            f"({mode} vs {reference_label})"
        )
        assert half[1] == reference[1], (
            f"{label}: final VFS state diverges "
            f"({mode} vs {reference_label})"
        )
