"""Differential harness: the same op script, native vs redirected.

The correctness claim under test is Section III's transparency property:
an enrolled app observes the same results, the same errnos, and the same
final filesystem state as it would have natively — only timing differs.

A *script* is a list of ``(libc_method, arg, ...)`` steps.  Arguments
may be symbolic: :class:`P` resolves against the app's data directory,
:class:`H` replays a handle (fd, shmid, address) returned by an earlier
step.  Outcomes are normalized — handles become ``h<n>`` tokens, stat
results drop world-specific inode numbers — so two worlds' outcome
streams compare with ``==``.

Step names that are not :class:`~repro.kernel.libc.Libc` methods fall
back to the app context itself, which is how the binder catalogue's
``call_service``/``call_service_oneway``/``export_service``/``call_app``
scripts run through the same grammar.
"""

from __future__ import annotations

import errno as errno_mod

from repro.errors import SyscallError
from repro.kernel.process import Credentials
from repro.kernel.vfs import InodeKind


class P:
    """A path relative to the app's data directory."""

    def __init__(self, rel):
        self.rel = rel


class H:
    """The handle produced by step ``step`` (fd, shmid, shmat address)."""

    def __init__(self, step, slot=0):
        self.step = step
        self.slot = slot


_HANDLE_RETURNING = {"open", "socket", "shmget", "shmat", "dup"}


def run_script(ctx, script, start=0, stop=None, handles=None,
               outcomes=None):
    """Execute ``script`` through ``ctx.libc``; return normalized outcomes.

    ``start``/``stop`` bound the executed slice while keeping step
    numbering absolute, and ``handles``/``outcomes`` carry state across
    calls — together they let a caller split one script across a
    snapshot/restore boundary: run ``[0, split)`` on the original
    world, restore, then run ``[split, end)`` on the restored context
    with the same handle table (handles are plain kernel-assigned
    integers, so they stay valid across the boundary).
    """
    handles = {} if handles is None else handles
    outcomes = [] if outcomes is None else outcomes
    end = len(script) if stop is None else stop
    for step, op in enumerate(script[start:end], start):
        name, args = op[0], op[1:]
        real_args = []
        for arg in args:
            if isinstance(arg, P):
                real_args.append(ctx.data_path(arg.rel))
            elif isinstance(arg, H):
                real_args.append(handles[(arg.step, arg.slot)])
            else:
                real_args.append(arg)
        target = ctx.libc if callable(getattr(ctx.libc, name, None)) else ctx
        try:
            result = getattr(target, name)(*real_args)
        except SyscallError as exc:
            code = errno_mod.errorcode.get(exc.errno, str(exc.errno))
            outcomes.append((step, name, "errno", code))
            continue
        outcomes.append(
            (step, name, "ok", _normalize(name, result, step, handles))
        )
    return outcomes


def _normalize(name, result, step, handles):
    if name in _HANDLE_RETURNING:
        handles[(step, 0)] = result
        return f"h{step}.0"
    if name == "pipe":
        for slot, value in enumerate(result):
            handles[(step, slot)] = value
        return tuple(f"h{step}.{slot}" for slot in range(len(result)))
    if name in ("stat", "lstat", "fstat"):
        # st_ino is a world-global allocation counter; everything else
        # must agree
        return {
            "mode": result.st_mode,
            "uid": result.st_uid,
            "gid": result.st_gid,
            "size": result.st_size,
            "nlink": result.st_nlink,
        }
    if name == "listdir":
        return sorted(result)
    if name == "readv":
        # iovec reads come back as a list of buffers; freeze it so the
        # outcome tuple hashes/compares like every other step.
        return tuple(bytes(chunk) for chunk in result)
    return result


_ROOT = Credentials(0)


def vfs_tree(kernel, root_path):
    """Flatten a VFS subtree into {relpath: (kind, mode, payload)}.

    ``payload`` is file content for files, the sorted child list for
    directories — the observable final state, minus inode numbers.
    """
    tree = {}

    def visit(path, rel):
        inode = kernel.vfs.resolve(path, _ROOT)
        if inode.kind is InodeKind.DIRECTORY:
            names = sorted(kernel.vfs.listdir(path, _ROOT))
            tree[rel] = ("dir", inode.mode, tuple(names))
            for name in names:
                visit(f"{path}/{name}", f"{rel}/{name}" if rel else name)
        elif inode.kind is InodeKind.FILE:
            data = bytes(inode.data) if inode.data is not None else b""
            tree[rel] = ("file", inode.mode, data)
        else:
            tree[rel] = (inode.kind.value, inode.mode, None)

    visit(root_path, "")
    return tree


def data_kernel(world):
    """The kernel holding the app's (possibly delegated) file state."""
    anception = getattr(world, "anception", None)
    if anception is not None and not anception.policy.file_io_on_host:
        return anception.cvm.kernel
    return world.kernel


class SnapshotResume:
    """A ``run_modes`` world spec that splits the script over a restore.

    The harness runs ``script[:split]`` on ``world``, snapshots it,
    restores the blob into a brand-new world object, and finishes
    ``script[split:]`` there — one more "mode" whose outcome stream and
    final tree must equal every other's.  This is the restore≡boot pin:
    a snapshot boundary dropped at an arbitrary point mid-script must be
    invisible to the app.  ``split=None`` halves the script.
    """

    def __init__(self, world, split=None):
        self.world = world
        self.split = split


def _run_snapshot_resume(spec, script, app_factory):
    """One mode's ``(outcomes, tree)`` with a mid-script restore."""
    from repro.world import _World

    world = spec.world
    running = world.install_and_launch(app_factory())
    running.run()
    ctx = running.ctx
    split = len(script) // 2 if spec.split is None else spec.split
    handles = {}
    outcomes = []
    run_script(ctx, script, stop=split, handles=handles,
               outcomes=outcomes)
    restored = _World.restore(world.snapshot())
    rctx = restored.zygote.launched[-1].ctx
    run_script(rctx, script, start=split, handles=handles,
               outcomes=outcomes)
    anception = getattr(restored, "anception", None)
    if anception is not None:
        anception.async_fence(rctx.libc.task)
    tree = vfs_tree(data_kernel(restored), rctx.data_dir)
    return outcomes, tree


def run_modes(worlds, script, app_factory):
    """Run ``script`` in every world of ``worlds``; return all halves.

    ``worlds`` maps label -> world (e.g. native / anception /
    write-behind / a :class:`SnapshotResume` spec); the result maps the
    same labels to ``(outcomes, final_tree)`` for the same app package.
    Scripts that end with buffered write-behind state still compare
    equal: the final step of every script should fence or close its
    descriptors, and the tree walk reads the delegated kernel *after*
    the stream returned.
    """
    halves = {}
    for label, world in worlds.items():
        if isinstance(world, SnapshotResume):
            halves[label] = _run_snapshot_resume(world, script,
                                                 app_factory)
            continue
        running = world.install_and_launch(app_factory())
        running.run()
        ctx = running.ctx
        outcomes = run_script(ctx, script)
        anception = getattr(world, "anception", None)
        if anception is not None:
            # Process exit closes descriptors, which drains any staged
            # write-behind AND batched-binder windows; the tree walk
            # sees settled state (a no-op when both are off).
            anception.async_fence(ctx.libc.task)
        tree = vfs_tree(data_kernel(world), ctx.data_dir)
        halves[label] = (outcomes, tree)
    return halves


def run_differential(both_worlds, script, app_factory):
    """Run ``script`` in both worlds; return (native, redirected) halves.

    Each half is ``(outcomes, final_tree)`` for the same app package.
    """
    halves = run_modes(
        {label: both_worlds[label] for label in ("native", "anception")},
        script, app_factory,
    )
    return halves["native"], halves["anception"]
