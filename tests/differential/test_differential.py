"""Native vs redirected: identical results, errnos, and final state."""

import pytest

from repro.android.app import App, AppManifest
from repro.kernel import vfs
from repro.kernel.net import AF_INET, SOCK_STREAM

from tests.differential.harness import (
    H,
    P,
    run_differential,
    run_script,
    vfs_tree,
    data_kernel,
)


class DiffApp(App):
    manifest = AppManifest(
        "com.diff.probe",
        permissions=("INTERNET",),
        initial_data={"seed.txt": b"identical-seed"},
    )

    def main(self, ctx):
        return {"ok": True}


class EchoServer:
    def handle_data(self, conn, data):
        return b"echo:" + data


def assert_equivalent(both_worlds, script):
    native, redirected = run_differential(both_worlds, script, DiffApp)
    assert native[0] == redirected[0], "outcome streams diverge"
    assert native[1] == redirected[1], "final VFS state diverges"
    return native


RW = vfs.O_RDWR | vfs.O_CREAT
TRUNC = vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC


class TestFileOps:
    def test_create_write_read_stat(self, both_worlds):
        script = [
            ("open", P("a.txt"), TRUNC, 0o600),
            ("write", H(0), b"hello-diff"),
            ("pread", H(0), 5, 0),
            ("fstat", H(0)),
            ("close", H(0)),
            ("stat", P("a.txt")),
            ("read_file", P("a.txt")),
        ]
        native = assert_equivalent(both_worlds, script)
        assert (1, "write", "ok", 10) in native[0]
        assert (6, "read_file", "ok", b"hello-diff") in native[0]

    def test_directory_lifecycle(self, both_worlds):
        script = [
            ("mkdir", P("sub"), 0o700),
            ("open", P("sub/inner.bin"), TRUNC, 0o644),
            ("write", H(1), b"x" * 4096),
            ("close", H(1)),
            ("rename", P("sub/inner.bin"), P("sub/renamed.bin")),
            ("stat", P("sub/renamed.bin")),
            ("listdir", P("sub")),
            ("listdir", P("")),
            ("unlink", P("sub/renamed.bin")),
            ("rmdir", P("sub")),
            ("listdir", P("")),
        ]
        assert_equivalent(both_worlds, script)

    def test_seed_data_visible_both_sides(self, both_worlds):
        script = [
            ("read_file", P("seed.txt")),
            ("stat", P("seed.txt")),
        ]
        native = assert_equivalent(both_worlds, script)
        assert native[0][0][3] == b"identical-seed"

    def test_lseek_and_sparse_read(self, both_worlds):
        script = [
            ("open", P("seek.bin"), TRUNC, 0o644),
            ("write", H(0), b"0123456789"),
            ("lseek", H(0), 4, 0),
            ("read", H(0), 3),
            ("close", H(0)),
        ]
        native = assert_equivalent(both_worlds, script)
        assert (3, "read", "ok", b"456") in native[0]

    def test_chmod_and_access(self, both_worlds):
        script = [
            ("open", P("locked"), TRUNC, 0o644),
            ("close", H(0)),
            ("chmod", P("locked"), 0o400),
            ("stat", P("locked")),
        ]
        assert_equivalent(both_worlds, script)


class TestErrnos:
    def test_missing_file_enoent(self, both_worlds):
        script = [
            ("open", P("nope"), vfs.O_RDONLY),
            ("stat", P("nope")),
            ("unlink", P("nope")),
            ("read_file", P("ghost/also-nope")),
        ]
        native = assert_equivalent(both_worlds, script)
        assert all(outcome[2] == "errno" and outcome[3] == "ENOENT"
                   for outcome in native[0])

    def test_bad_fd_ebadf(self, both_worlds):
        script = [
            ("open", P("once"), TRUNC, 0o644),
            ("close", H(0)),
            ("write", H(0), b"stale"),
            ("close", H(0)),
        ]
        native = assert_equivalent(both_worlds, script)
        assert native[0][2][2:] == ("errno", "EBADF")

    def test_mkdir_collision_eexist(self, both_worlds):
        script = [
            ("mkdir", P("dup"), 0o700),
            ("mkdir", P("dup"), 0o700),
        ]
        native = assert_equivalent(both_worlds, script)
        assert native[0][1][2:] == ("errno", "EEXIST")

    def test_rmdir_nonempty_enotempty(self, both_worlds):
        script = [
            ("mkdir", P("full"), 0o700),
            ("open", P("full/resident"), TRUNC, 0o644),
            ("close", H(1)),
            ("rmdir", P("full")),
        ]
        native = assert_equivalent(both_worlds, script)
        assert native[0][3][2:] == ("errno", "ENOTEMPTY")


class TestNetworkOps:
    @pytest.fixture(autouse=True)
    def _server(self, both_worlds):
        for world in both_worlds.values():
            world.internet.register_server(
                ("echo.example", 7), EchoServer()
            )

    def test_connect_send_recv(self, both_worlds):
        script = [
            ("socket", AF_INET, SOCK_STREAM, 0),
            ("connect", H(0), ("echo.example", 7)),
            ("send", H(0), b"ping"),
            ("recv", H(0), 64),
            ("close", H(0)),
        ]
        native = assert_equivalent(both_worlds, script)
        assert (3, "recv", "ok", b"echo:ping") in native[0]

    def test_connect_refused(self, both_worlds):
        script = [
            ("socket", AF_INET, SOCK_STREAM, 0),
            ("connect", H(0), ("nobody.example", 80)),
            ("close", H(0)),
        ]
        native = assert_equivalent(both_worlds, script)
        assert native[0][1][2] == "errno"


class TestIpcOps:
    def test_pipe_roundtrip(self, both_worlds):
        script = [
            ("pipe",),
            ("write", H(0, 1), b"through-the-pipe"),
            ("read", H(0, 0), 64),
            ("close", H(0, 1)),
            ("close", H(0, 0)),
        ]
        native = assert_equivalent(both_worlds, script)
        assert (2, "read", "ok", b"through-the-pipe") in native[0]

    def test_sysv_shm_lifecycle(self, both_worlds):
        script = [
            ("shmget", 0x5151, 8192),
            ("shmat", H(0)),
            ("shmdt", H(1)),
        ]
        assert_equivalent(both_worlds, script)


class TestHarness:
    def test_handles_are_opaque(self, both_worlds, native_ctx):
        outcomes = run_script(native_ctx, [
            ("open", P("h.bin"), TRUNC, 0o644),
            ("close", H(0)),
        ])
        assert outcomes[0][3] == "h0.0"

    def test_tree_walk_sees_content(self, native_world, native_ctx):
        native_ctx.libc.write_file(native_ctx.data_path("t.bin"), b"tree")
        tree = vfs_tree(data_kernel(native_world), native_ctx.data_dir)
        assert tree["t.bin"] == ("file", 0o644, b"tree")
        assert "" in tree  # the root dir itself

    def test_data_kernel_selects_cvm_when_redirected(self, both_worlds):
        assert data_kernel(both_worlds["native"]) \
            is both_worlds["native"].kernel
        anception = both_worlds["anception"]
        assert data_kernel(anception) is anception.cvm.kernel
