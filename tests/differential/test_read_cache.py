"""Read-cache transparency: cache-on == cache-off == native.

The page cache is a pure latency optimisation; these tests pin the
correctness half of that claim.  The same op script runs native, with
the classic every-read-delegates layer, and with the cache enabled —
outcomes (results *and* errnos) and final VFS trees must be identical.
The chaos half replays the ``cache.stale`` / ``cache.evict`` sites and
proves the invalidate-and-refetch recovery is invisible to the app and
byte-for-byte deterministic.
"""

from repro.android.app import App, AppManifest
from repro.faults.chaos import chaos_report_json, run_chaos
from repro.kernel import vfs
from repro.world import AnceptionWorld, NativeWorld

from tests.differential.harness import (
    H,
    P,
    data_kernel,
    run_script,
    vfs_tree,
)


class CacheDiffApp(App):
    manifest = AppManifest(
        "com.diff.cache",
        permissions=("INTERNET",),
        initial_data={"seed.txt": b"identical-seed"},
    )

    def main(self, ctx):
        return {"ok": True}


TRUNC = vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC

READ_HEAVY_SCRIPT = [
    ("open", P("hot.bin"), TRUNC, 0o644),
    ("write", H(0), b"A" * 4096),
    ("write", H(0), b"B" * 4096),
    ("pread", H(0), 4096, 0),        # cold miss, fills + read-ahead
    ("pread", H(0), 4096, 0),        # warm hit
    ("pread", H(0), 4096, 4096),     # read-ahead page, warm
    ("pread", H(0), 200, 4000),      # spans the page boundary
    ("pwrite", H(0), b"PATCH", 10),  # write-through
    ("pread", H(0), 32, 0),          # must see the patch
    ("lseek", H(0), 0, 0),
    ("read", H(0), 4096),            # sequential via shared offset
    ("read", H(0), 4096),
    ("ftruncate", H(0), 100),        # shrink under the cache
    ("pread", H(0), 4096, 0),        # EOF-clamped to 100 bytes
    ("pread", H(0), 64, 4096),       # read past EOF: empty
    ("fstat", H(0)),
    ("close", H(0)),
    ("unlink", P("hot.bin")),        # path invalidation
    ("open", P("hot.bin"), TRUNC, 0o644),
    ("write", H(18), b"N" * 512),
    ("pread", H(18), 512, 0),        # must be the new bytes
    ("close", H(18)),
    ("read_file", P("seed.txt")),
]


def _run_in(world, script):
    running = world.install_and_launch(CacheDiffApp())
    running.run()
    ctx = running.ctx
    outcomes = run_script(ctx, script)
    return outcomes, vfs_tree(data_kernel(world), ctx.data_dir)


class TestThreeWayIdentity:
    def test_read_heavy_script_identical_everywhere(self):
        native = _run_in(NativeWorld(), READ_HEAVY_SCRIPT)
        cache_off = _run_in(AnceptionWorld(), READ_HEAVY_SCRIPT)
        cache_on = _run_in(
            AnceptionWorld(read_cache=True), READ_HEAVY_SCRIPT
        )
        assert cache_on[0] == cache_off[0] == native[0], \
            "outcome streams diverge"
        assert cache_on[1] == cache_off[1] == native[1], \
            "final VFS state diverges"

    def test_tiny_cache_thrash_is_still_identical(self):
        # A 2-page cache under a 4-page working set evicts constantly;
        # eviction must never change what a read returns.
        script = [("open", P("thrash.bin"), TRUNC, 0o644)]
        script += [("write", H(0), bytes([0x50 + i]) * 4096)
                   for i in range(4)]
        script += [("pread", H(0), 4096, 4096 * (i % 4))
                   for i in range(12)]
        script += [("close", H(0))]
        cache_off = _run_in(AnceptionWorld(), script)
        cache_on = _run_in(
            AnceptionWorld(read_cache=True, cache_pages=2), script
        )
        assert cache_on == cache_off

    def test_fd_translated_metadata_calls_identical(self):
        # The fd-first marshalling sweep: every call here carries a host
        # fd in args[0] that must be rewritten to the proxy's fd.
        script = [
            ("open", P("meta.bin"), TRUNC, 0o600),
            ("write", H(0), b"m" * 4096),
            ("ftruncate", H(0), 1000),
            ("fstat", H(0)),
            ("fchmod", H(0), 0o640),
            ("fstat", H(0)),
            ("fdatasync", H(0)),
            ("pread", H(0), 100, 950),
            ("close", H(0)),
            ("stat", P("meta.bin")),
        ]
        native = _run_in(NativeWorld(), script)
        redirected = _run_in(AnceptionWorld(read_cache=True), script)
        assert native == redirected

    def test_fchown_requires_root_in_both_worlds(self):
        # Unprivileged fchown must fail with the same errno either way.
        script = [
            ("open", P("own.bin"), TRUNC, 0o600),
            ("fchown", H(0), 4242, 4242),
            ("fstat", H(0)),
            ("close", H(0)),
        ]
        native = _run_in(NativeWorld(), script)
        redirected = _run_in(AnceptionWorld(read_cache=True), script)
        assert native == redirected
        assert native[0][1][2] == "errno"
        assert native[0][1][3] == "EPERM"


STALE_PLAN = "cache.stale:every=2:call=pread64;cache.evict:nth=3"


def _chaos_probe(ctx):
    """A read-heavy stream the cache-fault sites can strike."""
    fd = ctx.libc.open(ctx.data_path("prey.bin"), TRUNC, 0o644)
    for i in range(4):
        ctx.libc.write(fd, bytes([0x60 + i]) * 4096)
    results = []
    for i in range(8):
        results.append(ctx.libc.pread(fd, 4096, 4096 * (i % 4)))
    ctx.libc.close(fd)
    return results


class TestChaosReplay:
    def test_stale_faults_are_invisible_to_the_app(self):
        # Under cache.stale/cache.evict fire, every read still returns
        # exactly what a clean cache-off world returns.
        def capture(ctx):
            capture.results = _chaos_probe(ctx)

        chaotic = run_chaos(capture, seed=5, faults=STALE_PLAN,
                            read_cache=True)
        assert chaotic.status == "ok"
        fired = chaotic.faults["fired_by_site"]
        assert fired.get("cache.stale", 0) >= 1
        assert any(entry[0] == "cache-invalidate"
                   for entry in chaotic.recovery_log)
        chaotic_results = capture.results

        clean = run_chaos(capture, seed=5, faults="cache.stale:nth=999",
                          read_cache=False)
        assert clean.status == "ok"
        assert chaotic_results == capture.results

    def test_chaos_replay_is_byte_identical(self):
        def probe(ctx):
            _chaos_probe(ctx)

        first = run_chaos(probe, seed=11, faults=STALE_PLAN,
                          read_cache=True)
        second = run_chaos(probe, seed=11, faults=STALE_PLAN,
                          read_cache=True)
        assert chaos_report_json(first) == chaos_report_json(second)
