"""E1: Table I microbenchmarks reproduce within tolerance."""

import pytest

from repro.perf.micro import PAPER_TABLE1, run_table1


@pytest.fixture(scope="module")
def native():
    return run_table1("native")


@pytest.fixture(scope="module")
def anception():
    return run_table1("anception")


class TestNativeColumn:
    def test_getpid(self, native):
        assert native["getpid_us"] == pytest.approx(0.76, abs=0.01)

    def test_write(self, native):
        assert native["write_4096_us"] == pytest.approx(28.61, rel=0.01)

    def test_read(self, native):
        assert native["read_4096_us"] == pytest.approx(6.51, rel=0.01)

    def test_binder_128(self, native):
        assert native["binder_128_ms"] == pytest.approx(12.0, rel=0.01)

    def test_binder_256(self, native):
        assert native["binder_256_ms"] == pytest.approx(12.0, rel=0.01)


class TestAnceptionColumn:
    def test_getpid_unchanged(self, anception):
        assert anception["getpid_us"] == pytest.approx(0.76, abs=0.01)

    def test_write(self, anception):
        assert anception["write_4096_us"] == pytest.approx(384.45, rel=0.02)

    def test_read(self, anception):
        assert anception["read_4096_us"] == pytest.approx(305.03, rel=0.02)

    def test_binder_128(self, anception):
        assert anception["binder_128_ms"] == pytest.approx(31.0, rel=0.02)

    def test_binder_256(self, anception):
        assert anception["binder_256_ms"] == pytest.approx(31.3, rel=0.02)


class TestShape:
    """The qualitative claims of Section VI-A."""

    def test_write_slowdown_about_13x(self, native, anception):
        ratio = anception["write_4096_us"] / native["write_4096_us"]
        paper_ratio = 384.45 / 28.61
        assert ratio == pytest.approx(paper_ratio, rel=0.05)

    def test_read_slowdown_about_47x(self, native, anception):
        ratio = anception["read_4096_us"] / native["read_4096_us"]
        paper_ratio = 305.03 / 6.51
        assert ratio == pytest.approx(paper_ratio, rel=0.05)

    def test_binder_adds_about_19ms(self, native, anception):
        added = anception["binder_128_ms"] - native["binder_128_ms"]
        assert added == pytest.approx(19.0, abs=0.5)

    def test_paper_reference_table_intact(self):
        assert PAPER_TABLE1["anception"]["write_4096_us"] == 384.45
