"""Interactive latency: 'negligible on interactive macrobenchmarks'."""

import pytest

from repro.perf.interactive import (
    INTERACTIONS,
    run_interactive_comparison,
    run_interactive_session,
)


@pytest.fixture(scope="module")
def comparison():
    return run_interactive_comparison()


class TestInteractiveLatency:
    def test_overhead_under_one_percent(self, comparison):
        assert comparison["overhead_percent"] < 1.0

    def test_latency_well_inside_frame_budget(self, comparison):
        """Per-interaction latency stays far below a 16.7 ms frame."""
        assert comparison["anception_us"] < 16_700

    def test_native_is_never_slower(self, comparison):
        assert comparison["native_us"] <= comparison["anception_us"]

    def test_session_is_deterministic(self):
        a = run_interactive_session("anception", interactions=30)
        b = run_interactive_session("anception", interactions=30)
        assert a == b

    def test_every_event_consumed(self, native_world):
        from repro.perf.interactive import InteractiveApp

        app = InteractiveApp()
        running = native_world.install_and_launch(app)
        running.run()
        native_world.focus(running)
        for i in range(5):
            native_world.ui.inject_touch(i, i)
            event = app.handle_one_interaction(running.ctx, i)
            assert (event.x, event.y) == (i, i)
