"""The calibrated cost model's arithmetic."""

import pytest

from repro.perf.costs import CostModel, DEFAULT_COSTS, PAGE_SIZE


class TestChunking:
    def test_zero_bytes_zero_chunks(self):
        assert DEFAULT_COSTS.chunks(0) == 0

    def test_one_byte_one_chunk(self):
        assert DEFAULT_COSTS.chunks(1) == 1

    def test_exact_page_one_chunk(self):
        assert DEFAULT_COSTS.chunks(PAGE_SIZE) == 1

    def test_page_plus_one_two_chunks(self):
        assert DEFAULT_COSTS.chunks(PAGE_SIZE + 1) == 2


class TestCalibration:
    """The native constants must equal the paper's Table I measurements."""

    def test_getpid_native(self):
        assert DEFAULT_COSTS.syscall_base_ns == 760

    def test_write_native(self):
        total = DEFAULT_COSTS.syscall_base_ns + DEFAULT_COSTS.file_write_page_ns
        assert total == pytest.approx(28_610, abs=10)

    def test_read_native(self):
        total = DEFAULT_COSTS.syscall_base_ns + DEFAULT_COSTS.file_read_page_ns
        assert total == pytest.approx(6_510, abs=10)

    def test_binder_native(self):
        total = DEFAULT_COSTS.syscall_base_ns + DEFAULT_COSTS.binder_transaction_ns
        assert total == 12_000_000

    def test_asim_check_negligible(self):
        """Two decimal places of a us: invisible, as the paper reports."""
        assert DEFAULT_COSTS.asim_check_ns < 5

    def test_redirect_overhead_write_formula(self):
        """The emergent anception write latency lands on Table I."""
        overhead = DEFAULT_COSTS.redirect_overhead_ns(
            bytes_in=PAGE_SIZE + 13, bytes_out=8
        )
        native = DEFAULT_COSTS.syscall_base_ns + DEFAULT_COSTS.file_write_page_ns
        anception_total = native + overhead + DEFAULT_COSTS.syscall_base_ns
        assert anception_total == pytest.approx(384_450, rel=0.01)

    def test_binder_redirect_overhead_per_byte(self):
        delta = (
            DEFAULT_COSTS.binder_redirect_overhead_ns(256)
            - DEFAULT_COSTS.binder_redirect_overhead_ns(128)
        )
        assert delta == pytest.approx(300_000, rel=0.01)  # 0.3 ms / 128 B


class TestCustomModels:
    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.syscall_base_ns = 0

    def test_custom_model_overrides(self):
        fast = CostModel(world_switch_ns=1)
        assert fast.world_switch_ns == 1
        assert fast.syscall_base_ns == DEFAULT_COSTS.syscall_base_ns
