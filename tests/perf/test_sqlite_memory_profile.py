"""E4, E5, E10: sqlite bench, memory overhead, ProfileDroid stats."""

import pytest

from repro.perf.memory import (
    headless_vs_full_footprint,
    measure_run,
    run_memory_overhead,
)
from repro.perf.profiledroid import run_profiledroid
from repro.perf.sqlite_bench import run_sqlite_bench


class TestSqliteBench:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "native": run_sqlite_bench("native", runs=2),
            "anception": run_sqlite_bench("anception", runs=2),
        }

    def test_native_per_row_near_paper(self, results):
        assert results["native"]["mean_us"] == pytest.approx(86.55, rel=0.02)

    def test_anception_per_row_near_paper(self, results):
        assert results["anception"]["mean_us"] == pytest.approx(
            86.67, rel=0.02
        )

    def test_virtually_indistinguishable(self, results):
        """Paper: +0.14%; accept anything under 1%."""
        overhead = (
            results["anception"]["mean_us"] - results["native"]["mean_us"]
        ) / results["native"]["mean_us"]
        assert 0 <= overhead < 0.01

    def test_deterministic_samples(self, results):
        assert results["native"]["sd_us"] == 0.0


class TestMemoryOverhead:
    @pytest.fixture(scope="class")
    def report(self):
        return run_memory_overhead()

    def test_active_mean_matches_paper(self, report):
        assert report["active_mean_kb"] == pytest.approx(25_460, rel=0.01)

    def test_sd_same_magnitude_as_paper(self, report):
        assert report["active_sd_kb"] == pytest.approx(524.54, rel=0.15)

    def test_about_half_available_for_proxies(self, report):
        assert report["free_fraction_at_mean"] == pytest.approx(48.3, abs=2)

    def test_proxies_counted(self):
        run = measure_run(10)
        assert run["proxies"] == 10
        assert run["active_kb"] < run["available_kb"]

    def test_headless_fits_full_does_not_matter(self):
        footprints = headless_vs_full_footprint()
        assert footprints["fits_in_guest_window"]
        assert footprints["headless_kb"] < footprints["full_stack_kb"]
        assert footprints["stock_android_floor_mb"] == 256


class TestProfileDroid:
    @pytest.fixture(scope="class")
    def report(self):
        return run_profiledroid()

    def test_ioctl_range_matches_paper(self, report):
        assert report["ioctl_fraction_min"] == pytest.approx(58.7, abs=1.0)
        assert report["ioctl_fraction_max"] == pytest.approx(80.1, abs=1.0)

    def test_ioctl_average_matches_paper(self, report):
        assert report["ioctl_fraction_avg"] == pytest.approx(73.7, abs=1.0)

    def test_ui_share_matches_paper(self, report):
        assert report["ui_share_overall"] == pytest.approx(81.35, abs=1.0)

    def test_six_popular_apps_profiled(self, report):
        assert len(report["apps"]) == 6

    def test_fractions_measured_not_asserted(self, report):
        """Every per-app stat derives from a recorded call stream."""
        for app in report["apps"]:
            assert app["total_syscalls"] > 100
            assert 0 < app["ioctls"] < app["total_syscalls"]
