"""The latency-breakdown tracer: the anatomy of Table I."""

import pytest

from repro.kernel import vfs
from repro.perf.costs import DEFAULT_COSTS, PAGE_SIZE
from repro.perf.trace import breakdown, format_breakdown


class TestBreakdown:
    def test_redirected_write_anatomy(self, anception_world, enrolled_ctx):
        """A redirected 4KB write decomposes into the paper's mechanism."""
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("traced"), vfs.O_WRONLY | vfs.O_CREAT
        )
        payload = b"t" * PAGE_SIZE
        _result, totals = breakdown(
            anception_world.clock, enrolled_ctx.libc.write, fd, payload
        )
        # exactly two world switches
        assert totals["world-switch"] == pytest.approx(
            2 * DEFAULT_COSTS.world_switch_ns / 1000, rel=0.01
        )
        # the per-byte channel copy dominates the remaining overhead
        assert totals["channel:copy"] > 100
        # the native write itself executed (in the CVM)
        assert totals["cvm:write"] == pytest.approx(
            DEFAULT_COSTS.file_write_page_ns / 1000, rel=0.01
        )

    def test_native_write_has_no_cross_vm_charges(self, native_ctx,
                                                  native_world):
        fd = native_ctx.libc.open(
            native_ctx.data_path("traced"), vfs.O_WRONLY | vfs.O_CREAT
        )
        _result, totals = breakdown(
            native_world.clock, native_ctx.libc.write, fd, b"x" * PAGE_SIZE
        )
        assert "world-switch" not in totals
        assert "channel:copy" not in totals

    def test_getpid_is_just_the_trap(self, anception_world, enrolled_ctx):
        _result, totals = breakdown(
            anception_world.clock, enrolled_ctx.libc.getpid
        )
        assert set(totals) <= {"syscall:getpid", "asim-check"}

    def test_breakdown_totals_match_elapsed(self, anception_world,
                                            enrolled_ctx):
        clock = anception_world.clock
        before = clock.now_ns
        _result, totals = breakdown(
            clock, enrolled_ctx.libc.mkdir, enrolled_ctx.data_path("d")
        )
        elapsed_us = (clock.now_ns - before) / 1000
        assert sum(totals.values()) == pytest.approx(elapsed_us, rel=0.01)

    def test_format_renders_shares(self):
        text = format_breakdown({"a": 75.0, "b": 25.0}, title="t")
        assert "75.00" in text
        assert "75.0%" in text
        assert "total" in text


class TestBreakdownReentrancy:
    """Regression: breakdown() used to clobber an outer in-progress trace."""

    def test_nested_breakdown_preserves_outer_clock_trace(self):
        from repro.clock import SimClock

        clock = SimClock()
        clock.enable_trace()
        clock.advance(10, "outer:before")
        _result, totals = breakdown(
            clock, lambda: clock.advance(5, "inner:work")
        )
        clock.advance(7, "outer:after")
        assert totals == {"inner:work": 0.01}  # 5 ns rounded to 0.01 us
        # the outer trace saw everything, in order
        assert clock.drain_trace() == [
            ("outer:before", 10), ("inner:work", 5), ("outer:after", 7),
        ]
        assert clock._trace_enabled
        clock.disable_trace()

    def test_breakdown_inside_breakdown(self, anception_world, enrolled_ctx):
        clock = anception_world.clock

        def outer():
            enrolled_ctx.libc.getpid()
            _res, inner_totals = breakdown(clock, enrolled_ctx.libc.getpid)
            assert "syscall:getpid" in inner_totals
            enrolled_ctx.libc.getpid()

        _res, outer_totals = breakdown(clock, outer)
        # outer sees all three getpid traps, inner saw only its own
        inner_only, _ = breakdown(clock, enrolled_ctx.libc.getpid), None
        assert outer_totals["syscall:getpid"] == pytest.approx(
            3 * 0.76, rel=0.01
        )

    def test_breakdown_leaves_tracing_disabled_when_it_started_disabled(
            self, native_world, native_ctx):
        clock = native_world.clock
        breakdown(clock, native_ctx.libc.getpid)
        assert not clock._trace_enabled
        clock.advance(5, "untraced")
        assert clock.drain_trace() == []
