"""E2 + E3: AnTuTu (Figure 6) and SunSpider (Figure 7) shapes."""

import pytest

from repro.perf.macro import (
    ACTIVE_SET_SIZE,
    PAPER_ANTUTU,
    boot_world,
    run_antutu,
    run_sunspider,
)


@pytest.fixture(scope="module")
def antutu():
    return run_antutu()


@pytest.fixture(scope="module")
def sunspider():
    return run_sunspider()


class TestAntutu:
    def test_overall_overhead_about_3_percent(self, antutu):
        assert antutu["overall"]["overhead_percent"] == pytest.approx(
            2.8, abs=1.0
        )

    def test_db_score_about_3_percent_under_native(self, antutu):
        assert antutu["normalized"]["DatabaseIO"] == pytest.approx(
            PAPER_ANTUTU["DatabaseIO"], abs=0.015
        )

    def test_2d_close_to_native(self, antutu):
        assert antutu["normalized"]["2DGraphics"] > 0.97

    def test_3d_close_to_native(self, antutu):
        assert antutu["normalized"]["3DGraphics"] > 0.98

    def test_native_faster_on_every_test(self, antutu):
        for test_name, ratio in antutu["normalized"].items():
            assert ratio <= 1.0, test_name

    def test_db_is_the_worst_case(self, antutu):
        ratios = antutu["normalized"]
        assert ratios["DatabaseIO"] == min(ratios.values())


class TestSunspider:
    def test_indistinguishable_from_native(self, sunspider):
        assert sunspider["max_overhead_percent"] < 0.5

    def test_all_suites_present(self, sunspider):
        assert set(sunspider["times_ms"]["native"]) == {
            "3d", "access", "bitops", "ctrlflow", "math", "string",
        }

    def test_times_in_sunspider_range(self, sunspider):
        """Absolute suite times land in the hundreds-of-ms regime."""
        for suite, ms in sunspider["times_ms"]["native"].items():
            assert 25 < ms < 1000, suite

    def test_string_is_slowest_suite(self, sunspider):
        times = sunspider["times_ms"]["native"]
        assert times["string"] == max(times.values())


class TestHarness:
    def test_boot_world_populates_active_set(self):
        world = boot_world("anception", active_set=5)
        assert world.anception.proxies.count == 5

    def test_default_active_set_is_papers_23(self):
        assert ACTIVE_SET_SIZE == 23
