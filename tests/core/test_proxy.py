"""Proxy processes: credential mirroring, parked execution."""

import pytest

from repro.core.cvm import ContainerVM
from repro.core.proxy import PROXY_MEMORY_KB, ProxyManager
from repro.errors import SimulationError
from repro.kernel.kernel import Machine
from repro.kernel.process import Credentials, TaskState


@pytest.fixture
def machine():
    return Machine(total_mb=256)


@pytest.fixture
def cvm(machine):
    return ContainerVM(machine)


@pytest.fixture
def manager(cvm):
    return ProxyManager(cvm)


def make_app_task(machine, uid=10001, name="com.app"):
    task = machine.kernel.spawn_task(name, Credentials(uid))
    task.cwd = f"/data/data/{name}"
    return task


class TestCreation:
    def test_proxy_mirrors_credentials(self, machine, manager):
        host_task = make_app_task(machine)
        proxy = manager.create_proxy(host_task)
        assert proxy.guest_task.credentials == host_task.credentials
        assert proxy.guest_task.cwd == host_task.cwd

    def test_proxy_lives_on_cvm_kernel(self, machine, manager, cvm):
        proxy = manager.create_proxy(make_app_task(machine))
        assert proxy.guest_task.kernel is cvm.kernel

    def test_proxy_parked_after_creation(self, machine, manager):
        proxy = manager.create_proxy(make_app_task(machine))
        assert proxy.guest_task.state is TaskState.SLEEPING

    def test_host_task_links_to_proxy(self, machine, manager):
        host_task = make_app_task(machine)
        proxy = manager.create_proxy(host_task)
        assert host_task.proxy is proxy.guest_task
        assert proxy.guest_task.proxied_for is host_task

    def test_duplicate_proxy_rejected(self, machine, manager):
        host_task = make_app_task(machine)
        manager.create_proxy(host_task)
        with pytest.raises(SimulationError):
            manager.create_proxy(host_task)

    def test_private_dir_replicated_in_cvm(self, machine, manager, cvm):
        host_task = make_app_task(machine, name="com.replicated")
        manager.create_proxy(host_task)
        assert cvm.kernel.vfs.exists(
            "/data/data/com.replicated", Credentials(0)
        )
        inode = cvm.kernel.vfs.resolve(
            "/data/data/com.replicated", Credentials(0)
        )
        assert inode.uid == host_task.credentials.uid

    def test_proxy_for_unknown_task_errors(self, machine, manager):
        with pytest.raises(SimulationError):
            manager.proxy_for(make_app_task(machine))


class TestExecution:
    def test_execute_runs_on_guest_kernel(self, machine, manager):
        host_task = make_app_task(machine)
        proxy = manager.create_proxy(host_task)
        pid = manager.execute(proxy, "getpid", (), {})
        assert pid == proxy.guest_task.pid

    def test_execute_reparks_after_call(self, machine, manager):
        proxy = manager.create_proxy(make_app_task(machine))
        manager.execute(proxy, "getpid", (), {})
        assert proxy.guest_task.state is TaskState.SLEEPING
        assert proxy.calls_executed == 1

    def test_permission_checks_use_proxy_credentials(self, machine, manager,
                                                     cvm):
        """The host's permission model transports to the CVM."""
        from repro.errors import SyscallError

        stranger_dir_owner = make_app_task(machine, uid=10001,
                                           name="com.victim")
        manager.create_proxy(stranger_dir_owner)
        attacker = make_app_task(machine, uid=10002, name="com.attacker")
        attacker_proxy = manager.create_proxy(attacker)
        with pytest.raises(SyscallError):
            manager.execute(
                attacker_proxy, "open",
                ("/data/data/com.victim/secret", 0x41, 0o600), {},
            )


class TestBookkeeping:
    def test_count_and_memory(self, machine, manager):
        for i in range(5):
            manager.create_proxy(make_app_task(machine, name=f"app{i}"))
        assert manager.count == 5
        assert manager.memory_kb() == 5 * PROXY_MEMORY_KB

    def test_remove_proxy_reaps_guest_task(self, machine, manager):
        host_task = make_app_task(machine)
        proxy = manager.create_proxy(host_task)
        manager.remove_proxy(host_task)
        assert not proxy.guest_task.is_alive()
        assert host_task.proxy is None
        assert manager.count == 0

    def test_host_reap_mirrors_to_proxy(self, machine, manager):
        """Killing the host task kills its CVM counterpart."""
        host_task = make_app_task(machine)
        proxy = manager.create_proxy(host_task)
        machine.kernel.reap_task(host_task)
        assert not proxy.guest_task.is_alive()
