"""Cross-cutting invariants and failure injection.

These pin down the accounting discipline (exactly two world switches per
redirected call), the paper's *non*-guarantees (a compromised CVM may
return bad results — integrity is out of scope), and assorted edge
behaviour of the layer under failure.
"""

import pytest

from repro.errors import SimulationError, SyscallError
from repro.kernel import vfs


class TestWorldSwitchAccounting:
    def test_redirected_call_costs_exactly_two_switches(self,
                                                        anception_world,
                                                        enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        irq_before = hypervisor.interrupt_count
        hyp_before = hypervisor.hypercall_count
        enrolled_ctx.libc.syscall("mkdir", enrolled_ctx.data_path("d"))
        assert hypervisor.interrupt_count == irq_before + 1
        assert hypervisor.hypercall_count == hyp_before + 1

    def test_host_call_costs_zero_switches(self, anception_world,
                                           enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        irq_before = hypervisor.interrupt_count
        hyp_before = hypervisor.hypercall_count
        enrolled_ctx.libc.getpid()
        assert hypervisor.interrupt_count == irq_before
        assert hypervisor.hypercall_count == hyp_before

    def test_ui_ioctl_costs_zero_switches(self, anception_world,
                                          enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        enrolled_ctx.create_window("w")
        irq_before = hypervisor.interrupt_count
        enrolled_ctx.submit_frame(b"px")
        assert hypervisor.interrupt_count == irq_before

    def test_channel_bytes_match_payload_scale(self, anception_world,
                                               enrolled_ctx):
        channel = anception_world.anception.channel
        before = channel.bytes_to_guest
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("b"), vfs.O_WRONLY | vfs.O_CREAT
        )
        enrolled_ctx.libc.write(fd, b"z" * 10_000)
        sent = channel.bytes_to_guest - before
        assert sent >= 10_000  # the payload crossed, plus call framing


class TestIntegrityNonGuarantee:
    def test_compromised_cvm_can_lie_in_syscall_results(self,
                                                        anception_world,
                                                        enrolled_ctx):
        """Section V-A: 'the CVM can return bad results from system
        calls' — integrity is explicitly not guaranteed (that is what
        the Section VII crypto wrapper mitigates)."""
        path = enrolled_ctx.data_path("ledger.txt")
        enrolled_ctx.libc.write_file(path, b"balance=1000")
        # a CVM-level attacker rewrites the stored bytes
        from repro.kernel.kernel import KernelControl

        attacker = KernelControl(anception_world.cvm.kernel)
        attacker.write_file(path, b"balance=0001")
        # ...and the app reads the lie, with no error raised
        assert enrolled_ctx.libc.read_file(path) == b"balance=0001"

    def test_crypto_fs_detects_the_same_lie(self, anception_world):
        from repro.core.crypto_fs import TransparentCryptoFS
        from repro.errors import SecurityViolation
        from tests.conftest import ScratchApp
        from repro.android.app import AppManifest

        class VaultApp(ScratchApp):
            manifest = AppManifest("com.vault.app")

        crypto = TransparentCryptoFS(anception_world.anception)
        anception_world.anception.iago_verify = True
        running = anception_world.install_and_launch(VaultApp())
        running.run()
        crypto.enable_for(running.ctx.task)
        ctx = running.ctx
        path = ctx.data_path("ledger.enc")
        ctx.libc.write_file(path, b"balance=1000")

        from repro.kernel.kernel import KernelControl

        attacker = KernelControl(anception_world.cvm.kernel)
        attacker.write_file(path, b"balance=0001")
        fd = ctx.libc.open(path, vfs.O_RDONLY)
        with pytest.raises(SecurityViolation):
            ctx.libc.pread(fd, 12, 0)


class TestFailureInjection:
    def test_dispatch_from_unenrolled_task_is_a_bug(self, anception_world):
        from repro.kernel.process import Credentials

        rogue = anception_world.kernel.spawn_task("rogue",
                                                  Credentials(10099))
        rogue.redirection_entry = 1  # flagged but never enrolled
        with pytest.raises(SimulationError):
            anception_world.libc_for(rogue).open("/data/local/tmp/x", 0x41)

    def test_double_enrollment_rejected(self, anception_world,
                                        enrolled_ctx):
        with pytest.raises(SimulationError):
            anception_world.anception.enroll_task(enrolled_ctx.task)

    def test_killed_app_cannot_continue(self, anception_world,
                                        enrolled_ctx):
        anception_world.kernel.reap_task(enrolled_ctx.task)
        with pytest.raises(SyscallError):
            enrolled_ctx.libc.getpid()

    def test_killed_app_proxy_also_dies(self, anception_world,
                                        enrolled_ctx):
        proxy_task = enrolled_ctx.task.proxy
        anception_world.kernel.reap_task(enrolled_ctx.task)
        assert not proxy_task.is_alive()

    def test_blocked_calls_do_not_touch_the_cvm(self, anception_world,
                                                enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        before = hypervisor.interrupt_count
        with pytest.raises(SyscallError):
            enrolled_ctx.libc.syscall("reboot")
        assert hypervisor.interrupt_count == before

    def test_enrolled_apps_isolated_from_each_other_in_cvm(
            self, anception_world, enrolled_ctx):
        from repro.android.app import AppManifest
        from tests.conftest import ScratchApp

        class OtherApp(ScratchApp):
            manifest = AppManifest("com.other.tenant")

        other = anception_world.install_and_launch(OtherApp())
        other.run()
        with pytest.raises(SyscallError) as exc:
            other.ctx.libc.read_file(
                "/data/data/com.test.scratch/seed.txt"
            )
        assert "EACCES" in str(exc.value)
