"""The host-side page cache for delegated reads (repro.core.page_cache).

Unit tests pin the page arithmetic (tail pages, all-or-nothing lookup,
LRU eviction, write-through refresh); layer tests pin the contract the
delegation layer relies on — a warm hit costs ``cache_hit_ns`` and rings
no doorbell, a cold miss is byte- and nanosecond-identical to the
classic redirect, and every mutation path invalidates before the next
lookup can run.
"""

import pytest

from repro.android.app import App, AppManifest
from repro.core.page_cache import HostPageCache
from repro.kernel import vfs
from repro.perf.costs import PAGE_SIZE
from repro.world import AnceptionWorld


PAGE = PAGE_SIZE
WINDOW = 8 * PAGE


class CacheApp(App):
    manifest = AppManifest("com.cache.probe", permissions=("INTERNET",))

    def main(self, ctx):
        return {"ok": True}


@pytest.fixture
def cache_world():
    return AnceptionWorld(read_cache=True)


@pytest.fixture
def cache_ctx(cache_world):
    running = cache_world.install_and_launch(CacheApp())
    running.run()
    return running.ctx


def _stage(ctx, name, pages, fill=None):
    """Create a file of ``pages`` distinct 4096B pages; return its fd."""
    fd = ctx.libc.open(
        ctx.data_path(name), vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC
    )
    for i in range(pages):
        block = fill if fill is not None else bytes([0x41 + i]) * PAGE
        ctx.libc.write(fd, block)
    return fd


class TestUnitFillAndLookup:
    def test_miss_until_filled_then_exact_bytes(self):
        cache = HostPageCache()
        data = bytes(range(256)) * 32  # 8192 B, two pages
        assert cache.lookup(7, 0, PAGE) is None
        assert cache.misses == 1
        cache.fill_window(7, data, 0, PAGE, WINDOW)
        assert cache.lookup(7, 0, PAGE) == data[:PAGE]
        assert cache.lookup(7, 100, 300) == data[100:400]
        assert cache.hits == 2

    def test_lookup_spanning_pages_and_short_tail(self):
        cache = HostPageCache()
        data = b"x" * (PAGE + 100)  # tail page is 100 bytes
        cache.fill_window(5, data, 0, len(data), WINDOW)
        assert cache.lookup(5, PAGE - 50, 200) == data[PAGE - 50:PAGE + 150]
        # EOF-clamped: asking for more than exists returns what exists,
        # exactly like the CVM-side pread would.
        assert cache.lookup(5, PAGE, PAGE) == data[PAGE:]
        assert cache.lookup(5, len(data) + 10, PAGE) == b""

    def test_all_or_nothing_when_a_middle_page_is_cold(self):
        cache = HostPageCache()
        data = b"y" * (3 * PAGE)
        cache.fill_window(9, data, 0, 3 * PAGE, 0)
        cache.drop_range(9, PAGE, PAGE)  # page 1 gone
        assert cache.lookup(9, 0, 3 * PAGE) is None
        assert cache.lookup(9, 0, PAGE) == data[:PAGE]

    def test_readahead_is_window_bounded(self):
        cache = HostPageCache()
        data = b"z" * (32 * PAGE)
        demanded, ahead = cache.fill_window(3, data, 0, PAGE, WINDOW)
        assert demanded == 1
        assert ahead == WINDOW // PAGE
        # the last read-ahead page is warm; the one after it is cold
        assert cache.peek(3, (WINDOW // PAGE) * PAGE, PAGE) == b"z" * PAGE
        assert cache.lookup(3, (1 + WINDOW // PAGE) * PAGE, PAGE) is None

    def test_lru_evicts_oldest_page_first(self):
        cache = HostPageCache(max_pages=4)
        data = b"e" * (6 * PAGE)
        cache.fill_window(1, data, 0, 6 * PAGE, 0)
        assert len(cache) == 4
        assert cache.evicted_pages == 2
        # pages 0 and 1 were pushed out; 2..5 remain
        assert cache.lookup(1, 0, PAGE) is None
        assert cache.lookup(1, 2 * PAGE, PAGE) == b"e" * PAGE
        # touching page 2 protects it from the next eviction
        cache.fill_window(2, b"n" * PAGE, 0, PAGE, 0)
        assert cache.peek(1, 2 * PAGE, PAGE) is not None

    def test_refresh_updates_in_place_and_drops_truncated_tail(self):
        cache = HostPageCache()
        data = b"a" * (3 * PAGE)
        cache.fill_window(4, data, 0, 3 * PAGE, 0)
        shorter = b"b" * (PAGE + 10)
        touched = cache.refresh_ino(4, shorter)
        assert touched == 3
        assert cache.invalidated_pages == 1  # page 2 fell past EOF
        assert cache.lookup(4, 0, PAGE) == b"b" * PAGE
        assert cache.lookup(4, PAGE, PAGE) == b"b" * 10
        assert cache.lookup(4, 2 * PAGE, PAGE) == b""  # past new EOF

    def test_refresh_is_a_noop_for_unknown_inodes(self):
        cache = HostPageCache()
        assert cache.refresh_ino(99, b"whatever") == 0
        assert len(cache) == 0

    def test_invalidate_and_clear_forget_everything(self):
        cache = HostPageCache()
        cache.fill_window(1, b"q" * PAGE, 0, PAGE, 0)
        cache.fill_window(2, b"r" * PAGE, 0, PAGE, 0)
        assert cache.invalidate_ino(1) == 1
        assert not cache.knows(1)
        assert cache.knows(2)
        assert cache.clear() == 1
        assert len(cache) == 0
        assert not cache.knows(2)

    def test_stats_shape_and_hit_rate(self):
        cache = HostPageCache(max_pages=8)
        cache.fill_window(1, b"s" * PAGE, 0, PAGE, 0)
        cache.lookup(1, 0, PAGE)
        cache.lookup(1, PAGE, PAGE)  # b"" EOF hit
        cache.lookup(2, 0, PAGE)  # miss
        stats = cache.stats()
        assert stats["pages"] == 1
        assert stats["max_pages"] == 8
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["hit_rate"] == round(2 / 3, 4)

    def test_rejects_a_zero_page_cache(self):
        with pytest.raises(ValueError):
            HostPageCache(max_pages=0)


class TestLayerColdAndWarm:
    def test_warm_pread_costs_cache_hit_not_a_ring_trip(
            self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "warm.bin", 2)
        clock = cache_ctx.kernel.clock
        costs = cache_world.machine.costs
        with clock.measure() as cold:
            first = cache_ctx.libc.pread(fd, PAGE, 0)
        with clock.measure() as warm:
            second = cache_ctx.libc.pread(fd, PAGE, 0)
        assert first == second == bytes([0x41]) * PAGE
        assert warm.elapsed_ns < cold.elapsed_ns / 10
        # warm = null-call floor + one page's cache-hit charge
        assert warm.elapsed_ns <= 2 * (
            costs.cache_hit_ns + costs.syscall_base_ns
        )
        cache_ctx.libc.close(fd)

    def test_warm_hit_rings_no_doorbell(self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "quiet.bin", 1)
        cache_ctx.libc.pread(fd, PAGE, 0)  # fill
        hypervisor = cache_world.anception.cvm.hypervisor
        irqs = hypervisor.interrupt_count
        hypercalls = hypervisor.hypercall_count
        cache_ctx.libc.pread(fd, PAGE, 0)  # warm
        assert hypervisor.interrupt_count == irqs
        assert hypervisor.hypercall_count == hypercalls
        cache_ctx.libc.close(fd)

    def test_cold_miss_is_nanosecond_identical_to_cache_off(self):
        def cold_read_ns(read_cache):
            world = AnceptionWorld(read_cache=read_cache)
            running = world.install_and_launch(CacheApp())
            running.run()
            ctx = running.ctx
            fd = _stage(ctx, "parity.bin", 4)
            with ctx.kernel.clock.measure() as span:
                data = ctx.libc.pread(fd, PAGE, 0)
            ctx.libc.close(fd)
            return span.elapsed_ns, data

        on_ns, on_data = cold_read_ns(True)
        off_ns, off_data = cold_read_ns(False)
        assert on_ns == off_ns
        assert on_data == off_data

    def test_readahead_makes_the_next_page_warm(
            self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "ahead.bin", 4)
        cache_ctx.libc.pread(fd, PAGE, 0)  # miss fills page 0 + window
        hypervisor = cache_world.anception.cvm.hypervisor
        irqs = hypervisor.interrupt_count
        assert cache_ctx.libc.pread(fd, PAGE, PAGE) == bytes([0x42]) * PAGE
        assert hypervisor.interrupt_count == irqs
        stats = cache_world.anception.page_cache.stats()
        assert stats["readahead_pages"] >= 3
        cache_ctx.libc.close(fd)

    def test_sequential_reads_advance_the_shared_offset(
            self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "seq.bin", 3)
        cache_ctx.libc.pread(fd, PAGE, 0)  # fill all three pages
        cache_ctx.libc.lseek(fd, 0)
        assert cache_ctx.libc.read(fd, PAGE) == bytes([0x41]) * PAGE
        assert cache_ctx.libc.read(fd, PAGE) == bytes([0x42]) * PAGE
        # lseek goes through the ring; the cache must keep serving the
        # post-seek position correctly.
        cache_ctx.libc.lseek(fd, 2 * PAGE)
        assert cache_ctx.libc.read(fd, PAGE) == bytes([0x43]) * PAGE
        cache_ctx.libc.close(fd)

    def test_warm_readv_serves_the_whole_vector(
            self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "vec.bin", 4)
        cache_ctx.libc.pread(fd, 4 * PAGE, 0)  # fill
        cache_ctx.libc.lseek(fd, 0)
        hypervisor = cache_world.anception.cvm.hypervisor
        irqs = hypervisor.interrupt_count
        chunks = cache_ctx.libc.readv(fd, [PAGE] * 4)
        assert hypervisor.interrupt_count == irqs
        assert chunks == [bytes([0x41 + i]) * PAGE for i in range(4)]
        cache_ctx.libc.close(fd)


class TestLayerCoherence:
    def test_write_through_updates_cached_bytes(self, cache_ctx):
        fd = _stage(cache_ctx, "wt.bin", 1)
        cache_ctx.libc.pread(fd, PAGE, 0)  # fill
        cache_ctx.libc.pwrite(fd, b"PATCH", 10)
        data = cache_ctx.libc.pread(fd, PAGE, 0)
        assert data[10:15] == b"PATCH"
        assert data[:10] == bytes([0x41]) * 10
        cache_ctx.libc.close(fd)

    def test_ftruncate_shrinks_what_the_cache_serves(self, cache_ctx):
        fd = _stage(cache_ctx, "trunc.bin", 2)
        cache_ctx.libc.pread(fd, 2 * PAGE, 0)  # fill both pages
        cache_ctx.libc.ftruncate(fd, 100)
        assert cache_ctx.libc.pread(fd, 2 * PAGE, 0) == bytes([0x41]) * 100
        cache_ctx.libc.close(fd)

    def test_unlink_then_recreate_never_serves_stale_pages(self, cache_ctx):
        fd = _stage(cache_ctx, "stale.bin", 1)
        cache_ctx.libc.pread(fd, PAGE, 0)  # fill
        cache_ctx.libc.close(fd)
        cache_ctx.libc.unlink(cache_ctx.data_path("stale.bin"))
        fd = _stage(cache_ctx, "stale.bin", 1, fill=b"N" * PAGE)
        assert cache_ctx.libc.pread(fd, PAGE, 0) == b"N" * PAGE
        cache_ctx.libc.close(fd)

    def test_o_trunc_reopen_refreshes_the_snapshot(self, cache_ctx):
        fd = _stage(cache_ctx, "retrunc.bin", 1)
        cache_ctx.libc.pread(fd, PAGE, 0)  # fill
        cache_ctx.libc.close(fd)
        fd = cache_ctx.libc.open(
            cache_ctx.data_path("retrunc.bin"),
            vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC,
        )
        cache_ctx.libc.write(fd, b"fresh")
        assert cache_ctx.libc.pread(fd, PAGE, 0) == b"fresh"
        cache_ctx.libc.close(fd)

    def test_cvm_reboot_drops_every_page(self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "reboot.bin", 2)
        cache_ctx.libc.pread(fd, PAGE, 0)
        cache = cache_world.anception.page_cache
        assert len(cache) > 0
        cache_world.anception.reboot_cvm()
        assert len(cache) == 0
        assert not cache._sizes

    def test_stats_surface_through_the_layer(self, cache_world, cache_ctx):
        fd = _stage(cache_ctx, "stats.bin", 1)
        cache_ctx.libc.pread(fd, PAGE, 0)
        cache_ctx.libc.pread(fd, PAGE, 0)
        cache_ctx.libc.close(fd)
        stats = cache_world.anception.stats()["read_cache"]
        assert stats["hits"] >= 1
        assert stats["misses"] >= 1
        assert 0.0 < stats["hit_rate"] <= 1.0

    def test_cache_off_layer_reports_none(self, anception_world):
        assert anception_world.anception.page_cache is None
        assert anception_world.anception.stats()["read_cache"] is None
