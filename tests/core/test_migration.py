"""Warm migration: ``CVMPool.migrate`` moves an app between lanes.

The pin is differential, the same shape as restore≡boot: an app
migrated mid-flight — with open remote fds, cached pages, and a
*pending* (staged, undrained) write-behind window — must be
indistinguishable from a twin app on a second world that never moved.
Migration reuses the snapshot module's per-app slice, so these tests
are also the :func:`app_slice`/:func:`apply_app_slice` integration
pins.
"""

import pytest

from repro.core.snapshot import AppSliceError, app_slice, vfs_digest
from repro.errors import SimulationError
from repro.obs.runner import boot_obs_world


def _boot():
    return boot_obs_world(cvms=4, placement="by-uid", read_cache=True,
                          write_behind=True, binder_ring=True)


def _stage(ctx):
    """Open a file, warm the cache, and leave a wb entry pending."""
    libc = ctx.libc
    fd = libc.open(ctx.data_path("ledger.bin"), 0o102, 0o600)
    libc.write(fd, b"A" * 4096)
    libc.lseek(fd, 0, 0)
    libc.read(fd, 4096)          # pulls pages into the host cache
    libc.write(fd, b"B" * 100)   # stages an undrained wb entry
    return fd


def _finish(world, ctx, fd):
    libc = ctx.libc
    world.anception.async_fence(libc.task)
    libc.lseek(fd, 0, 0)
    data = libc.read(fd, 4096)
    libc.close(fd)
    return data


def _other_lane(layer, lane):
    return layer.pool.lane_by_id((lane.cvm_id + 1) % len(layer.pool.lanes))


class TestMovedEqualsNeverMoved:
    def test_migrated_app_matches_unmigrated_twin(self):
        moved_world, moved_ctx = _boot()
        still_world, still_ctx = _boot()
        moved_fd = _stage(moved_ctx)
        still_fd = _stage(still_ctx)

        task = moved_ctx.libc.task
        layer = moved_world.anception
        source = layer._lane(task)
        pending = len(source.write_behind.windows[task.pid].entries)
        assert pending > 0, "staging left no pending wb entry"
        target = _other_lane(layer, source)

        assert layer.pool.migrate(task.pid, target) is True
        assert layer.pool.lane_for(task) is target

        # The pending window traveled intact, undrained.
        window = target.write_behind.windows[task.pid]
        assert len(window.entries) == pending
        assert source.write_behind.windows.get(task.pid) is None
        # So did the app's cached pages.
        assert len(target.page_cache) > 0

        # The app itself cannot tell: reads and final tree match the
        # twin that never moved.
        moved = _finish(moved_world, moved_ctx, moved_fd)
        still = _finish(still_world, still_ctx, still_fd)
        assert moved == still
        still_lane = still_world.anception._lane(still_ctx.libc.task)
        assert (vfs_digest(target.cvm.kernel, task.cwd)
                == vfs_digest(still_lane.cvm.kernel,
                              still_ctx.libc.task.cwd))

    def test_fd_offsets_survive_migration(self):
        world, ctx = _boot()
        libc = ctx.libc
        fd = libc.open(ctx.data_path("off.bin"), 0o102, 0o600)
        libc.write(fd, b"0123456789")
        libc.lseek(fd, 4, 0)
        world.anception.async_fence(libc.task)

        layer = world.anception
        source = layer._lane(libc.task)
        layer.pool.migrate(libc.task.pid, _other_lane(layer, source))

        assert libc.read(fd, 3) == b"456"
        libc.close(fd)

    def test_deferred_errnos_travel(self):
        # A deferred write-behind errno recorded on the source lane must
        # surface on the target exactly as it would have at home.
        world, ctx = _boot()
        libc = ctx.libc
        fd = libc.open(ctx.data_path("err.bin"), 0o102, 0o600)
        libc.write(fd, b"payload")
        layer = world.anception
        source = layer._lane(libc.task)
        import errno

        from repro.errors import SyscallError

        source.write_behind.errors[(libc.task.pid, fd)] = SyscallError(
            errno.EIO, "synthetic deferred error", call="write"
        )
        layer.pool.migrate(libc.task.pid, _other_lane(layer, source))
        with pytest.raises(SyscallError) as excinfo:
            libc.close(fd)
        assert excinfo.value.errno == errno.EIO


class TestCounters:
    def test_migrations_counted_separately_from_rebalances(self):
        world, ctx = _boot()
        layer = world.anception
        task = ctx.libc.task
        source = layer._lane(task)
        layer.pool.migrate(task.pid, _other_lane(layer, source))
        stats = layer.pool.stats()
        assert stats["migrations"] == 1
        assert stats["rebalances"] == 0

    def test_same_lane_migration_is_a_noop(self):
        world, ctx = _boot()
        layer = world.anception
        task = ctx.libc.task
        assert layer.pool.migrate(task.pid, layer._lane(task)) is False
        assert layer.pool.stats()["migrations"] == 0

    def test_migration_lands_in_the_recovery_log(self):
        world, ctx = _boot()
        layer = world.anception
        task = ctx.libc.task
        source = layer._lane(task)
        layer.pool.migrate(task.pid, _other_lane(layer, source))
        kinds = [entry[0] for entry in layer.recovery_log]
        assert "migrate" in kinds


class TestRefusals:
    def test_unknown_pid_raises(self):
        world, _ctx = _boot()
        with pytest.raises(SimulationError):
            world.anception.pool.migrate(999_999, 0)

    def test_live_shm_attachment_skips_migration(self):
        world, ctx = _boot()
        libc = ctx.libc
        shmid = libc.shmget(0x5151, 8192, 0o1000 | 0o600)
        addr = libc.shmat(shmid)
        layer = world.anception
        task = libc.task
        source = layer._lane(task)
        assert layer.pool.migrate(task.pid,
                                  _other_lane(layer, source)) is False
        assert layer.pool.lane_for(task) is source
        assert layer.recovery_log[-1][0] == "migrate-skip"
        assert layer.pool.stats()["migrations"] == 0
        libc.shmdt(addr)

    def test_slice_refuses_shm_holder(self):
        world, ctx = _boot()
        libc = ctx.libc
        shmid = libc.shmget(0x5252, 8192, 0o1000 | 0o600)
        addr = libc.shmat(shmid)
        layer = world.anception
        with pytest.raises(AppSliceError, match="shm"):
            app_slice(layer, libc.task)
        libc.shmdt(addr)

    def test_skip_leaves_source_state_untouched(self):
        world, ctx = _boot()
        fd = _stage(ctx)
        libc = ctx.libc
        shmid = libc.shmget(0x5353, 8192, 0o1000 | 0o600)
        addr = libc.shmat(shmid)
        layer = world.anception
        task = libc.task
        source = layer._lane(task)
        pending = len(source.write_behind.windows[task.pid].entries)
        layer.pool.migrate(task.pid, _other_lane(layer, source))
        assert (len(source.write_behind.windows[task.pid].entries)
                == pending)
        libc.shmdt(addr)
        # The staged write still drains at home: the B-run sits at 4096
        # (the read in _stage advanced the offset before the write).
        world.anception.async_fence(task)
        libc.lseek(fd, 4096, 0)
        assert libc.read(fd, 100) == b"B" * 100
        libc.close(fd)
