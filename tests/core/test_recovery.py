"""The recovery supervisor: retries, respawns, reboots — never hangs.

Companion to ``test_cvm_reboot.py``: that file proves a reboot *can*
revive the container; this one proves the Anception layer reaches for it
(and the cheaper recoveries) automatically when
:class:`~repro.core.recovery.RecoveryPolicy` is enabled, and degrades to
clean EIO when it is not.
"""

import pytest

from repro.core.recovery import RecoveryPolicy
from repro.errors import SyscallError
from repro.faults.engine import FaultEngine
from repro.kernel import vfs
from repro.kernel.kernel import KernelCrashed


@pytest.fixture
def chaos_world(anception_world):
    anception_world.anception.recovery = RecoveryPolicy.chaos_default()
    return anception_world


def arm(world, plan, seed=0):
    return FaultEngine(plan, seed=seed).arm(world.clock)


class TestPolicyKnobs:
    def test_default_is_disabled(self, anception_world):
        assert not anception_world.anception.recovery.enabled

    def test_chaos_default_is_all_on(self):
        policy = RecoveryPolicy.chaos_default()
        assert policy.enabled
        assert policy.reboot_on_crash
        assert policy.respawn_proxies
        assert policy.reboot_on_compromise

    def test_backoff_is_linear(self):
        policy = RecoveryPolicy(backoff_ns=100)
        assert [policy.backoff_for(n) for n in (1, 2, 3)] == [100, 200, 300]


class TestDisabledDegradation:
    def test_crashed_cvm_stays_crashed(self, anception_world,
                                       enrolled_ctx):
        with pytest.raises(KernelCrashed):
            anception_world.cvm.kernel.panic("test crash")
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.open(enrolled_ctx.data_path("f"), 0o102)
        assert "EIO" in str(exc.value)
        assert anception_world.cvm.crashed
        assert anception_world.cvm.reboot_count == 0

    def test_mid_call_crash_is_eio_not_simulator_guts(self,
                                                      anception_world,
                                                      enrolled_ctx):
        engine = arm(anception_world, "cvm.crash:nth=1:call=open")
        try:
            with pytest.raises(SyscallError) as exc:
                enrolled_ctx.libc.open(enrolled_ctx.data_path("f"), 0o102)
        finally:
            engine.disarm()
        assert "EIO" in str(exc.value)
        assert "delegation failed" in str(exc.value)


class TestAutomaticRecovery:
    def test_crash_mid_call_completes_after_reboot(self, chaos_world,
                                                   enrolled_ctx):
        engine = arm(chaos_world, "cvm.crash:nth=1:call=open")
        try:
            fd = enrolled_ctx.libc.open(
                enrolled_ctx.data_path("survivor.txt"),
                vfs.O_RDWR | vfs.O_CREAT,
            )
            enrolled_ctx.libc.write(fd, b"made it")
            enrolled_ctx.libc.close(fd)
        finally:
            engine.disarm()
        assert chaos_world.cvm.reboot_count == 1
        assert enrolled_ctx.libc.read_file(
            enrolled_ctx.data_path("survivor.txt")
        ) == b"made it"
        actions = [action for action, _ in
                   chaos_world.anception.recovery_log]
        assert "retry" in actions and "reboot-cvm" in actions

    def test_proxy_death_respawns_and_retries(self, chaos_world,
                                              enrolled_ctx):
        proxies = chaos_world.anception.proxies
        old_pid = proxies.proxy_for(enrolled_ctx.task).guest_task.pid
        engine = arm(chaos_world, "proxy.kill:nth=1:call=open")
        try:
            fd = enrolled_ctx.libc.open(
                enrolled_ctx.data_path("after-respawn"), 0o102
            )
            enrolled_ctx.libc.close(fd)
        finally:
            engine.disarm()
        new = proxies.proxy_for(enrolled_ctx.task)
        assert new.guest_task.pid != old_pid
        assert new.guest_task.is_alive()
        assert chaos_world.cvm.reboot_count == 0
        assert ("respawn-proxy", f"host pid {enrolled_ctx.task.pid}") in \
            chaos_world.anception.recovery_log

    def test_retries_exhausted_surfaces_eio(self, chaos_world,
                                            enrolled_ctx):
        engine = arm(chaos_world, "channel.corrupt")  # every transfer
        try:
            with pytest.raises(SyscallError) as exc:
                enrolled_ctx.libc.open(
                    enrolled_ctx.data_path("never"), 0o102
                )
        finally:
            engine.disarm()
        assert "EIO" in str(exc.value)
        retries = [entry for entry in chaos_world.anception.recovery_log
                   if entry[0] == "retry"]
        assert len(retries) == \
            chaos_world.anception.recovery.max_retries

    def test_backoff_charged_between_attempts(self, chaos_world,
                                              enrolled_ctx):
        engine = arm(chaos_world, "channel.corrupt:nth=1")
        chaos_world.clock.enable_trace()
        try:
            enrolled_ctx.libc.stat(enrolled_ctx.data_path("seed.txt"))
        finally:
            engine.disarm()
        charges = [reason for reason, _ in
                   chaos_world.clock.drain_trace()]
        assert "anception:retry-backoff" in charges

    def test_dropped_irq_resignalled(self, chaos_world, enrolled_ctx):
        engine = arm(chaos_world, "irq.drop:nth=1")
        try:
            enrolled_ctx.libc.stat(enrolled_ctx.data_path("seed.txt"))
        finally:
            engine.disarm()
        assert ("resignal-irq", "stat") in \
            chaos_world.anception.recovery_log

    def test_dropped_hypercall_polled(self, chaos_world, enrolled_ctx):
        engine = arm(chaos_world, "hypercall.drop:nth=1")
        try:
            enrolled_ctx.libc.stat(enrolled_ctx.data_path("seed.txt"))
        finally:
            engine.disarm()
        assert ("hypercall-poll", "stat") in \
            chaos_world.anception.recovery_log

    def test_persistent_irq_loss_stalls_out_as_eio(self, chaos_world,
                                                   enrolled_ctx):
        engine = arm(chaos_world, "irq.drop")  # every doorbell
        try:
            with pytest.raises(SyscallError) as exc:
                enrolled_ctx.libc.stat(enrolled_ctx.data_path("seed.txt"))
        finally:
            engine.disarm()
        assert "EIO" in str(exc.value)

    def test_slow_boot_fault_stretches_recovery(self, chaos_world,
                                                enrolled_ctx):
        plan = "cvm.crash:nth=1:call=open;cvm.slow-boot:delay_us=5000"
        engine = arm(chaos_world, plan)
        try:
            with chaos_world.clock.measure() as window:
                fd = enrolled_ctx.libc.open(
                    enrolled_ctx.data_path("slow"), 0o102
                )
                enrolled_ctx.libc.close(fd)
        finally:
            engine.disarm()
        assert window.elapsed_ns >= \
            chaos_world.anception.recovery.reboot_cost_ns + 5_000_000


class TestRebootRebinding:
    def crash_and_reboot(self, world):
        with pytest.raises(KernelCrashed):
            world.cvm.kernel.panic("test crash")
        return world.anception.reboot_cvm()

    def test_survivors_get_fresh_proxies_and_tables(self, anception_world,
                                                    enrolled_ctx):
        survivors = self.crash_and_reboot(anception_world)
        assert survivors == 1
        proxies = anception_world.anception.proxies
        proxy = proxies.proxy_for(enrolled_ctx.task)
        assert proxy.kernel is anception_world.cvm.kernel \
            if hasattr(proxy, "kernel") else True
        assert proxy.guest_task.is_alive()
        table = anception_world.anception.fd_tables[enrolled_ctx.task.pid]
        assert table.remote_fds() == set()

    def test_redirected_io_works_after_rebind(self, anception_world,
                                              enrolled_ctx):
        self.crash_and_reboot(anception_world)
        path = enrolled_ctx.data_path("rebound.txt")
        enrolled_ctx.libc.write_file(path, b"post-reboot io")
        assert enrolled_ctx.libc.read_file(path) == b"post-reboot io"

    def test_logcat_rebinds_to_new_container(self, anception_world,
                                             enrolled_ctx):
        """GingerBreak step 6 after a reboot: the app's restarted logcat
        drains the *new* CVM's log device into a redirected file."""
        from repro.android.logcat import logcat_payload
        from repro.kernel.loader import run_payload

        self.crash_and_reboot(anception_world)
        new_kernel = anception_world.cvm.kernel
        new_kernel.log_device.append("vold", "post-reboot fault index -7")
        log_path = enrolled_ctx.data_path("gb.log")
        child_pid = enrolled_ctx.libc.fork()
        child = enrolled_ctx.kernel.pids.require(child_pid)
        image = enrolled_ctx.kernel.syscall(
            child, "execve", "/system/bin/logcat", (log_path,)
        )
        run_payload(enrolled_ctx.kernel, child, image)
        content = enrolled_ctx.libc.read_file(log_path).decode()
        assert "post-reboot fault index -7" in content
        # the capture landed in the container, not on the host
        from repro.kernel.process import Credentials

        assert new_kernel.vfs.exists(log_path, Credentials(0))
        assert not anception_world.kernel.vfs.exists(
            log_path, Credentials(0)
        )

    def test_reboot_emits_channels_rebound_event(self, chaos_world,
                                                 enrolled_ctx):
        from repro.obs.bus import TraceBus

        bus = TraceBus.install(chaos_world.clock)
        engine = arm(chaos_world, "cvm.crash:nth=1:call=open")
        try:
            with bus.capture() as capture:
                fd = enrolled_ctx.libc.open(
                    enrolled_ctx.data_path("observed"), 0o102
                )
                enrolled_ctx.libc.close(fd)
        finally:
            engine.disarm()
        events = [record["name"] for record in capture.records
                  if record["type"] == "event"
                  and record["kind"] == "recovery"]
        assert "channels-rebound" in events
        assert "reboot-cvm" in events
