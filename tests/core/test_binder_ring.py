"""Batched binder delegation: windows, fences, and the deferred ledger.

These pin the tentpole's contract points: staging is invisible in an
unfaulted run, a full window drains itself behind one doorbell pair, a
reply-carrying call fences every staged oneway first, a deferred
delivery errno surfaces exactly once at the right barrier, the oneway
lane swallows service-side errors in every mode, large parcels ride
the bulk-copy path, the transaction log stays bounded, and a CVM
reboot clears every staged remnant.
"""

import errno

import pytest

from repro.android.app import App, AppManifest
from repro.android.binder import (
    TRANSACTION_LOG_LIMIT,
    BinderDriver,
    Transaction,
    TransactionLog,
)
from repro.core.anception import BINDER_RING_DEPTH
from repro.core.marshal import encoded_size
from repro.errors import SyscallError
from repro.faults.engine import FaultEngine
from repro.faults.plan import FaultPlan
from repro.world import AnceptionWorld


class RingApp(App):
    manifest = AppManifest("com.test.binderring")

    def main(self, ctx):
        return {"ok": True}


@pytest.fixture
def ring_world():
    return AnceptionWorld(binder_ring=True)


@pytest.fixture
def ring_ctx(ring_world):
    running = ring_world.install_and_launch(RingApp())
    running.run()
    return running.ctx


def _arm(world, plan):
    engine = FaultEngine(FaultPlan.parse(plan), seed=0)
    engine.arm(world.clock)
    return engine


def _doorbells(anception):
    stats = anception.channel.stats()
    return stats["hypercalls"] + stats["interrupts"]


class TestOptIn:
    def test_library_default_is_off(self):
        world = AnceptionWorld()
        assert world.anception.binder_ring is None
        assert world.anception.stats()["binder_ring"] is None

    def test_depth_defaults_and_override(self):
        default = AnceptionWorld(binder_ring=True)
        assert default.anception.binder_ring.depth == min(
            BINDER_RING_DEPTH, default.anception.channel.ring_depth
        )
        shallow = AnceptionWorld(binder_ring=True, binder_ring_depth=3)
        assert shallow.anception.binder_ring.depth == 3

    def test_off_means_sync_forwarding(self):
        world = AnceptionWorld()
        running = world.install_and_launch(RingApp())
        running.run()
        ctx = running.ctx
        assert ctx.call_service_oneway("location", "get_fix", {}) is None
        # Nothing staged anywhere: the call already executed in the CVM.
        log = world.anception.cvm.android.binder_driver.transaction_log
        assert len(log) == 1


class TestStaging:
    def test_oneway_returns_optimistic_none(self, ring_world, ring_ctx):
        assert ring_ctx.call_service_oneway(
            "location", "get_fix", {}) is None
        ring = ring_world.anception.binder_ring
        assert ring.enqueued == 1
        assert ring.stats()["pending"] == 1
        assert ring.drains == 0

    def test_staged_oneway_has_not_reached_the_service(
            self, ring_world, ring_ctx):
        ring_ctx.call_service_oneway("power", "acquire_wakelock", {})
        driver = ring_world.anception.cvm.android.binder_driver
        assert len(driver.transaction_log) == 0

    def test_full_window_drains_itself(self, ring_world):
        world = AnceptionWorld(binder_ring=True, binder_ring_depth=4)
        running = world.install_and_launch(RingApp())
        running.run()
        ctx = running.ctx
        ring = world.anception.binder_ring
        for _ in range(4):
            ctx.call_service_oneway("location", "get_fix", {})
        assert ring.drains == 0
        ctx.call_service_oneway("location", "get_fix", {})
        # The fifth enqueue hit the depth bound: the first four drained
        # as one window and the fifth is now staged alone.
        assert ring.drains == 1
        assert ring.stats()["pending"] == 1
        assert ring.max_depth_seen == 4

    def test_window_rides_one_doorbell_pair(self, ring_world, ring_ctx):
        anception = ring_world.anception
        for _ in range(8):
            ring_ctx.call_service_oneway("location", "get_fix", {})
        before = _doorbells(anception)
        anception.async_fence(ring_ctx.libc.task)
        after = _doorbells(anception)
        # Eight staged transactions drained for (far) fewer doorbells
        # than eight per-call round trips (2 per call = 16).
        assert 0 < after - before <= 4
        assert anception.channel.stats()["submit_ring"]["binder_pushed"] == 8

    def test_payload_snapshot_at_enqueue(self, ring_world, ring_ctx):
        payload = {"tag": "before"}
        ring_ctx.call_service_oneway("power", "acquire_wakelock", payload)
        payload["tag"] = "after"
        ring_world.anception.async_fence(ring_ctx.libc.task)
        service = ring_world.anception.cvm.android.service("power")
        pid = ring_world.anception.proxies.proxy_for(
            ring_ctx.libc.task).pid
        assert (pid, "before") in service.wakelocks

    def test_missing_target_raises_at_call_site(self, ring_world, ring_ctx):
        with pytest.raises(SyscallError) as exc:
            ring_ctx.call_service_oneway("nosuchservice", "m", {})
        assert exc.value.errno == errno.ENOENT
        assert ring_world.anception.binder_ring.enqueued == 0

    def test_service_side_error_is_swallowed(self, ring_world, ring_ctx):
        assert ring_ctx.call_service_oneway(
            "location", "no_such_method", {}) is None
        ring_world.anception.async_fence(ring_ctx.libc.task)
        driver = ring_world.anception.cvm.android.binder_driver
        assert driver.oneway_errors == 1
        # No delivery error is ledgered: the transaction WAS delivered.
        assert ring_world.anception.binder_ring.deferred_errors == 0


class TestFences:
    def test_sync_call_fences_staged_oneways_first(
            self, ring_world, ring_ctx):
        for _ in range(3):
            ring_ctx.call_service_oneway("location", "get_fix", {})
        ring_ctx.call_service("power", "acquire_wakelock", {})
        log = [(target, method) for _pid, target, method
               in ring_world.anception.cvm.android.binder_driver
               .transaction_log]
        assert log == [("location", "get_fix")] * 3 + [
            ("power", "acquire_wakelock")
        ]
        assert ring_world.anception.binder_ring.stats()["pending"] == 0

    def test_explicit_fence_settles_the_lane(self, ring_world, ring_ctx):
        ring_ctx.call_service_oneway("location", "get_fix", {})
        assert ring_ctx.libc.fence() == 0
        ring = ring_world.anception.binder_ring
        assert ring.stats()["pending"] == 0
        assert ring.fences >= 1

    def test_wait_input_fences_staged_oneways(self, ring_world, ring_ctx):
        ring_ctx.create_window("w")
        ring_world.ui.set_focus_by_task(ring_ctx.task)
        ring_world.type_text("evt")
        ring_ctx.call_service_oneway("location", "get_fix", {})
        assert ring_ctx.wait_input().text == "evt"
        assert ring_world.anception.binder_ring.stats()["pending"] == 0

    def test_file_io_does_not_fence_binder(self, ring_world, ring_ctx):
        from repro.kernel import vfs

        ring_ctx.call_service_oneway("location", "get_fix", {})
        fd = ring_ctx.libc.open(
            ring_ctx.data_path("f.bin"), vfs.O_RDWR | vfs.O_CREAT
        )
        ring_ctx.libc.write(fd, b"unrelated")
        ring_ctx.libc.close(fd)
        # Oneway binder traffic does not order against file I/O.
        assert ring_world.anception.binder_ring.stats()["pending"] == 1


class TestDeferredErrors:
    def test_dropped_oneway_surfaces_at_next_reply(
            self, ring_world, ring_ctx):
        engine = _arm(ring_world, "binder.drop:nth=1")
        try:
            ring_ctx.call_service_oneway("location", "get_fix", {})
            with pytest.raises(SyscallError) as exc:
                ring_ctx.call_service("location", "get_fix", {})
            assert exc.value.errno == errno.EIO
        finally:
            engine.disarm()

    def test_deferred_errno_surfaces_exactly_once(
            self, ring_world, ring_ctx):
        engine = _arm(ring_world, "binder.drop:nth=1:errno=ENOBUFS")
        try:
            ring_ctx.call_service_oneway("location", "get_fix", {})
            with pytest.raises(SyscallError) as exc:
                ring_ctx.libc.fence()
            assert exc.value.errno == errno.ENOBUFS
            # Ledger popped: the same error never surfaces twice.
            assert ring_ctx.libc.fence() == 0
            assert ring_ctx.call_service("location", "get_fix", {})
        finally:
            engine.disarm()

    def test_error_ledger_is_per_target(self, ring_world, ring_ctx):
        engine = _arm(ring_world, "binder.drop:nth=1")
        try:
            ring_ctx.call_service_oneway("location", "get_fix", {})
            ring_ctx.call_service_oneway("power", "acquire_wakelock", {})
            # The sync call targets power; location's drop is not its
            # error, so the reply comes back clean...
            assert ring_ctx.call_service("power", "release_wakelock", {})
            # ...and location's deferred errno waits for its own barrier.
            with pytest.raises(SyscallError):
                ring_ctx.call_service("location", "get_fix", {})
        finally:
            engine.disarm()

    def test_reboot_clears_staged_windows_and_ledger(
            self, ring_world, ring_ctx):
        engine = _arm(ring_world, "binder.drop:nth=1")
        try:
            ring_ctx.call_service_oneway("location", "get_fix", {})
            ring_ctx.libc.fence()
        except SyscallError:
            pass
        finally:
            engine.disarm()
        ring_ctx.call_service_oneway("location", "get_fix", {})
        ring_world.anception.reboot_cvm()
        ring = ring_world.anception.binder_ring
        assert ring.stats()["pending"] == 0
        assert not ring.errors
        assert ring_ctx.libc.fence() == 0


class TestBulkParcels:
    def test_large_parcel_counts_bulk_path(self, ring_world, ring_ctx):
        reply = ring_ctx.call_service(
            "location", "get_fix", {"blob": "x" * 8192}
        )
        assert reply["accuracy_m"] == 12.0
        assert ring_world.anception.binder_ring.bulk_parcels >= 1

    def test_large_oneway_parcel_counts_bulk_path(
            self, ring_world, ring_ctx):
        ring_ctx.call_service_oneway(
            "location", "request_updates", {"blob": "y" * 8192}
        )
        ring_world.anception.async_fence(ring_ctx.libc.task)
        assert ring_world.anception.binder_ring.bulk_parcels >= 1

    def test_small_parcel_stays_inline(self, ring_world, ring_ctx):
        ring_ctx.call_service("location", "get_fix", {"blob": "x" * 64})
        assert ring_world.anception.binder_ring.bulk_parcels == 0


class TestTransactionLogBounds:
    def test_log_is_bounded_with_drop_count(self):
        log = TransactionLog(limit=4)
        for i in range(10):
            log.append((i, "svc", "m"))
        assert len(log) == 4
        assert log.dropped == 6
        assert list(log) == [(i, "svc", "m") for i in range(6, 10)]

    def test_driver_default_limit(self, ring_world):
        driver = ring_world.anception.cvm.android.binder_driver
        assert driver.transaction_log.limit == TRANSACTION_LOG_LIMIT
        assert driver.transaction_log_dropped == 0

    def test_long_soak_stays_bounded(self, ring_world, ring_ctx):
        driver = ring_world.anception.cvm.android.binder_driver
        driver.transaction_log.limit = 8
        for _ in range(20):
            ring_ctx.call_service("location", "get_fix", {})
        assert len(driver.transaction_log) == 8
        assert driver.transaction_log_dropped == 12

    def test_payload_size_is_marshal_sized(self):
        payload = {"blob": "x" * 112}
        txn = Transaction("location", "get_fix", payload)
        assert txn.payload_size == encoded_size(payload)
        assert encoded_size(txn) == txn.payload_size + 16


class TestObservability:
    def test_binder_counters_flow_through_metrics(self):
        from repro.obs.runner import run_traced

        result = run_traced("binderburst", logcat=False, binder_ring=True)
        counters = result.metrics.snapshot()["counters"]
        submits = sum(s["value"] for s in counters["binder_submits_total"])
        drains = sum(s["value"] for s in counters["binder_drains_total"])
        fences = sum(s["value"] for s in counters["binder_fences_total"])
        assert submits == 24  # binderburst's two 12-oneway bursts
        assert drains >= 2
        assert fences >= 2

    def test_observation_is_free(self):
        from repro.obs.runner import run_traced

        observed = run_traced("binderburst", logcat=False, binder_ring=True)
        blind = run_traced("binderburst", logcat=False, binder_ring=True,
                           observe=False)
        assert observed.elapsed_ns == blind.elapsed_ns


class TestStats:
    def test_stats_block_shape(self, ring_world, ring_ctx):
        ring_ctx.call_service_oneway("location", "get_fix", {})
        ring_ctx.call_service("location", "get_fix", {})
        stats = ring_world.anception.stats()["binder_ring"]
        for key in ("depth", "enqueued", "drains", "fences",
                    "deferred_errors", "bulk_parcels", "dropped",
                    "reordered", "max_depth_seen", "pending"):
            assert key in stats, key
        assert stats["enqueued"] == 1
        assert stats["drains"] == 1
        assert stats["pending"] == 0
