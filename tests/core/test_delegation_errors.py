"""Typed delegation-layer failures: no more silent channel/proxy lies.

Before the fault-injection work the channel would hand over whatever
bytes it was given (including non-bytes) and the proxy manager would
happily ``execute`` against a dead guest task.  Both now fail loudly
with members of the :class:`~repro.errors.DelegationError` family, which
is what the recovery supervisor keys off.
"""

import pytest

from repro.clock import SimClock
from repro.core.channel import AnceptionChannel
from repro.errors import (
    ChannelError,
    ChannelIntegrityError,
    ChannelStalled,
    ContainerCrashed,
    DelegationError,
    ProxyDied,
    SyscallError,
)
from repro.faults.engine import FaultEngine
from repro.hypervisor import LguestHypervisor
from repro.kernel.kernel import Machine


@pytest.fixture
def machine():
    return Machine(total_mb=256)


@pytest.fixture
def channel(machine):
    hypervisor = LguestHypervisor(machine, guest_mb=32)
    hypervisor.launch_guest()
    return AnceptionChannel(hypervisor, machine.costs, num_pages=4)


class TestHierarchy:
    def test_family_tree(self):
        assert issubclass(ChannelError, DelegationError)
        assert issubclass(ChannelIntegrityError, ChannelError)
        assert issubclass(ChannelStalled, ChannelError)
        assert issubclass(ProxyDied, DelegationError)
        assert issubclass(ContainerCrashed, DelegationError)

    def test_not_syscall_errors(self):
        # the supervisor must be able to tell infrastructure failures
        # from legitimate errnos
        assert not issubclass(DelegationError, SyscallError)

    def test_sites_labelled(self):
        assert ChannelError.site == "channel"
        assert ProxyDied.site == "proxy"
        assert ContainerCrashed.site == "cvm"


class TestChannelTyping:
    def test_non_bytes_payload_rejected(self, channel):
        with pytest.raises(ChannelError, match="bytes-like"):
            channel.send_to_guest("a string is not wire data")

    def test_non_bytes_payload_rejected_to_host(self, channel):
        with pytest.raises(ChannelError, match="bytes-like"):
            channel.send_to_host(12345)

    def test_corruption_detected_by_crc(self, channel, machine):
        engine = FaultEngine("channel.corrupt:nth=1").arm(machine.clock)
        try:
            with pytest.raises(ChannelIntegrityError) as exc:
                channel.send_to_guest(b"precious-payload")
        finally:
            engine.disarm()
        assert exc.value.direction == "to-guest"
        assert exc.value.expected_crc != exc.value.actual_crc
        assert exc.value.nbytes == len(b"precious-payload")
        assert channel.integrity_failures == 1
        assert channel.stats()["integrity_failures"] == 1

    def test_truncation_detected(self, channel, machine):
        engine = FaultEngine("channel.truncate:nth=1").arm(machine.clock)
        try:
            with pytest.raises(ChannelIntegrityError):
                channel.send_to_host(b"x" * 64)
        finally:
            engine.disarm()

    def test_clean_transfer_counts_no_failures(self, channel):
        channel.send_to_guest(b"fine")
        assert channel.integrity_failures == 0

    def test_dropped_irq_reported_not_hung(self, channel, machine):
        engine = FaultEngine("irq.drop:nth=1").arm(machine.clock)
        try:
            assert channel.signal_guest("doorbell") is False
            assert channel.signal_guest("doorbell") is True
        finally:
            engine.disarm()

    def test_dropped_hypercall_reported(self, channel, machine):
        engine = FaultEngine("hypercall.drop:nth=1").arm(machine.clock)
        try:
            assert channel.signal_host("completion") is False
            assert channel.signal_host("completion") is True
        finally:
            engine.disarm()

    def test_duplicated_irq_counted_twice(self, channel, machine):
        before = channel.hypervisor.interrupt_count
        engine = FaultEngine("irq.dup:nth=1").arm(machine.clock)
        try:
            assert channel.signal_guest("doorbell") is True
        finally:
            engine.disarm()
        assert channel.hypervisor.interrupt_count == before + 2


class TestProxyTyping:
    def test_dead_proxy_raises_proxy_died(self, anception_world,
                                          enrolled_ctx):
        proxies = anception_world.anception.proxies
        proxy = proxies.proxy_for(enrolled_ctx.task)
        anception_world.cvm.kernel.reap_task(proxy.guest_task, exit_code=-9)
        with pytest.raises(ProxyDied) as exc:
            proxies.execute(proxy, "getpid", (), {})
        assert exc.value.host_pid == enrolled_ctx.task.pid
        assert exc.value.guest_pid == proxy.guest_task.pid

    def test_dead_proxy_surfaces_as_eio_to_app(self, anception_world,
                                               enrolled_ctx):
        # default recovery policy is disabled: typed failure -> EIO
        proxy = anception_world.anception.proxies.proxy_for(
            enrolled_ctx.task
        )
        anception_world.cvm.kernel.reap_task(proxy.guest_task, exit_code=-9)
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.open(enrolled_ctx.data_path("f"), 0o102)
        assert "EIO" in str(exc.value)

    def test_respawn_replaces_proxy(self, anception_world, enrolled_ctx):
        proxies = anception_world.anception.proxies
        old = proxies.proxy_for(enrolled_ctx.task)
        anception_world.cvm.kernel.reap_task(old.guest_task, exit_code=-9)
        new = proxies.respawn_proxy(enrolled_ctx.task)
        assert new.guest_task.pid != old.guest_task.pid
        assert new.guest_task.is_alive()
        assert proxies.proxy_for(enrolled_ctx.task) is new
        assert enrolled_ctx.task.proxy is new.guest_task


class TestEngineArmError:
    def test_engine_arm_is_reversible_midstream(self, channel, machine):
        engine = FaultEngine("channel.corrupt").arm(machine.clock)
        engine.disarm()
        channel.send_to_guest(b"safe again")
        assert channel.integrity_failures == 0

    def test_simclock_has_no_default_engine(self):
        assert getattr(SimClock(), "faults", None) is None
