"""CVM reboot and the virtual data disk (Section IV-5 persistence)."""

import pytest

from repro.errors import SyscallError
from repro.exploits.sock_sendpage import SockSendpage
from repro.kernel import vfs
from repro.kernel.process import Credentials


ROOT = Credentials(0)


def crash_cvm(anception_world):
    """Crash the container with the sock_sendpage exploit."""
    running = anception_world.install_and_launch(SockSendpage())
    running.run()
    assert anception_world.cvm.crashed
    return running


class TestReboot:
    def test_reboot_revives_the_container(self, anception_world,
                                          enrolled_ctx):
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()
        assert not anception_world.cvm.crashed
        assert anception_world.cvm.reboot_count == 1

    def test_app_data_survives_reboot(self, anception_world, enrolled_ctx):
        path = enrolled_ctx.data_path("precious.txt")
        enrolled_ctx.libc.write_file(path, b"survives-the-crash")
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()
        assert enrolled_ctx.libc.read_file(path) == b"survives-the-crash"

    def test_headless_services_rebooted(self, anception_world,
                                        enrolled_ctx):
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()
        assert anception_world.cvm.android.has_service("vold")
        reply = enrolled_ctx.call_service("location", "get_fix")
        assert reply["lat"] == pytest.approx(42.2808)

    def test_survivor_apps_reenrolled(self, anception_world, enrolled_ctx):
        crash_cvm(anception_world)
        survivors = anception_world.anception.reboot_cvm()
        assert survivors >= 1
        proxies = anception_world.anception.proxies
        assert proxies.has_proxy(enrolled_ctx.task)
        assert enrolled_ctx.task.proxy.kernel is anception_world.cvm.kernel

    def test_stale_remote_fds_invalidated(self, anception_world,
                                          enrolled_ctx):
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("open-across-crash"),
            vfs.O_RDWR | vfs.O_CREAT,
        )
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.write(fd, b"stale")
        assert "EBADF" in str(exc.value)

    def test_new_files_after_reboot_work(self, anception_world,
                                         enrolled_ctx):
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()
        enrolled_ctx.libc.write_file(
            enrolled_ctx.data_path("fresh.txt"), b"post-reboot"
        )
        assert enrolled_ctx.libc.read_file(
            enrolled_ctx.data_path("fresh.txt")
        ) == b"post-reboot"

    def test_guest_memory_scrubbed_on_reboot(self, anception_world,
                                             enrolled_ctx):
        """Nothing from the old instance's RAM leaks into the new one."""
        window = anception_world.cvm.hypervisor.guest_window
        physical = anception_world.machine.physical
        # Plant recognisable bytes in a guest frame via the proxy space.
        proxy_space = enrolled_ctx.task.proxy.address_space
        frame = proxy_space.allocator.allocate(owner="leak-test")
        physical.write_frame(frame, b"OLD-INSTANCE-SECRET")
        assert frame in window
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()
        assert physical.read_frame(frame)[:19] == bytes(19)

    def test_compromised_cvm_state_cleared(self, anception_world,
                                           enrolled_ctx):
        from repro.exploits.generic import RedirectedSyscallExploit

        exploit = RedirectedSyscallExploit("CVE-0000-0007", "persist-test",
                                           "setsockopt")
        exploit.prepare_world(anception_world)
        anception_world.install_and_launch(exploit).run()
        assert anception_world.cvm.compromised
        anception_world.anception.reboot_cvm()
        assert not anception_world.cvm.compromised


class TestSqliteCrashRecovery:
    def test_hot_journal_recovered_after_cvm_crash(self, anception_world,
                                                   enrolled_ctx):
        from repro.android.sqlite import Database

        db_path = enrolled_ctx.data_path("ledger.db")
        db = Database(enrolled_ctx.libc, db_path)
        db.create_table("tx")
        db.begin()
        db.insert("tx", b"committed-row")
        db.commit()
        db.checkpoint()

        # A second transaction commits its journal but the container
        # dies before checkpoint.
        db.begin()
        db.insert("tx", b"lost-row")
        db.commit()
        db.close()
        crash_cvm(anception_world)
        anception_world.anception.reboot_cvm()

        reopened = Database(enrolled_ctx.libc, db_path)
        assert reopened.recover()  # hot journal found and cleared
        assert reopened.select_all("tx") == [b"committed-row"]

    def test_recover_without_journal_is_noop(self, enrolled_ctx):
        from repro.android.sqlite import Database

        db = Database(enrolled_ctx.libc, enrolled_ctx.data_path("clean.db"))
        assert not db.recover()
