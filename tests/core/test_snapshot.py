"""The snapshot format, its determinism contract, and restore≡boot.

The pins here are the acceptance gates from DESIGN.md §14:

* two snapshots of the same world are byte-identical (deterministic
  traversal — including cache/LRU structures);
* restore → run ends byte-identical (``world_digest``) to a
  never-snapshotted run, across every placement policy at 1 and 4
  lanes;
* corrupted, truncated, or version-skewed blobs raise
  :class:`SnapshotError` and never a partial world;
* an armed fault engine rides the snapshot with its cursor and PRNG
  intact (the mid-chaos resume pin).
"""

import pytest

from repro.core.snapshot import (
    SNAPSHOT_EXEMPT,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    app_slice,
    audit_components,
    component_manifest,
    describe_snapshot,
    restore_world,
    snapshot_digest,
    snapshot_manifest,
    snapshot_meta,
    snapshot_world,
    stable_pickle_digest,
    walk_components,
    world_digest,
)
from repro.errors import SnapshotError
from repro.faults.engine import FaultEngine
from repro.faults.plan import FaultPlan
from repro.obs.runner import boot_obs_world, run_traced
from repro.world import AnceptionWorld, NativeWorld, _World


FULL_KNOBS = dict(read_cache=True, write_behind=True, binder_ring=True,
                  cvms=4, placement="by-uid")


def _warm_world(**knobs):
    """A booted world that has actually run a workload."""
    world, _ctx = boot_obs_world(**knobs)
    run_traced("write4k", seed=0, world=world)
    return world


class TestFormat:
    def test_blob_opens_with_magic(self, anception_world):
        blob = anception_world.snapshot()
        assert blob.startswith(SNAPSHOT_MAGIC)

    def test_describe_reports_version_and_digest(self, anception_world):
        blob = anception_world.snapshot()
        info = describe_snapshot(blob)
        assert info["version"] == SNAPSHOT_VERSION
        assert info["payload_bytes"] == len(blob) - 52  # header size
        assert snapshot_digest(blob) == info["digest"]

    def test_native_world_snapshots_too(self, native_world):
        restored = _World.restore(native_world.snapshot())
        assert world_digest(restored) == world_digest(native_world)

    def test_meta_rides_the_blob(self, anception_world):
        blob = anception_world.snapshot(
            meta={"workload": "write4k", "warmup": 2}
        )
        assert snapshot_meta(blob) == {"workload": "write4k", "warmup": 2}

    def test_meta_defaults_empty(self, anception_world):
        assert snapshot_meta(anception_world.snapshot()) == {}

    def test_manifest_names_world_components(self, anception_world):
        manifest = snapshot_manifest(anception_world.snapshot())
        assert "repro.kernel.kernel.Kernel" in manifest
        assert "repro.core.anception.AnceptionLayer" in manifest
        assert all(count > 0 for count in manifest.values())


class TestRejection:
    def test_too_short_blob(self):
        with pytest.raises(SnapshotError, match="too short"):
            describe_snapshot(b"ANCS")

    def test_bad_magic(self, anception_world):
        blob = anception_world.snapshot()
        with pytest.raises(SnapshotError, match="magic"):
            restore_world(b"NOTASNAP" + blob[8:])

    def test_unsupported_version(self, anception_world):
        blob = bytearray(anception_world.snapshot())
        blob[8] = 0xFF  # version u16 lives right after the magic
        with pytest.raises(SnapshotError, match="version"):
            restore_world(bytes(blob))

    def test_truncated_payload(self, anception_world):
        blob = anception_world.snapshot()
        with pytest.raises(SnapshotError, match="truncated"):
            restore_world(blob[:-10])

    def test_corrupted_payload_fails_digest(self, anception_world):
        blob = bytearray(anception_world.snapshot())
        blob[-1] ^= 0xFF
        with pytest.raises(SnapshotError, match="digest"):
            restore_world(bytes(blob))

    def test_corrupted_header_digest(self, anception_world):
        blob = bytearray(anception_world.snapshot())
        blob[20] ^= 0xFF  # inside the sha256 field
        with pytest.raises(SnapshotError):
            restore_world(bytes(blob))

    def test_valid_header_garbage_payload(self):
        import hashlib
        import struct
        import zlib

        payload = zlib.compress(b"not a pickle at all")
        header = struct.pack(
            "<8sHHQ32s", SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0,
            len(payload), hashlib.sha256(payload).digest(),
        )
        with pytest.raises(SnapshotError, match="deserialize"):
            restore_world(header + payload)

    def test_payload_without_section_table(self):
        import hashlib
        import pickle
        import struct
        import zlib

        payload = zlib.compress(pickle.dumps([1, 2, 3], protocol=4))
        header = struct.pack(
            "<8sHHQ32s", SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0,
            len(payload), hashlib.sha256(payload).digest(),
        )
        with pytest.raises(SnapshotError, match="section table"):
            restore_world(header + payload)


class TestDeterminism:
    def test_double_snapshot_is_byte_identical(self, anception_world):
        assert anception_world.snapshot() == anception_world.snapshot()

    def test_double_snapshot_after_cached_run(self):
        # The cache pin: a run with the read cache and both async lanes
        # on fills LRU/dict structures whose serialization must still be
        # a pure function of the object graph.
        world = _warm_world(**FULL_KNOBS)
        assert world.snapshot() == world.snapshot()

    def test_two_restores_resnapshot_identically(self):
        blob = _warm_world(**FULL_KNOBS).snapshot()
        first = _World.restore(blob)
        second = _World.restore(blob)
        assert first.snapshot() == second.snapshot()

    def test_restore_preserves_world_digest(self):
        world = _warm_world(**FULL_KNOBS)
        digest = world_digest(world)
        restored = _World.restore(world.snapshot())
        assert world_digest(restored) == digest

    def test_double_restore_is_idempotent(self):
        world = _warm_world(read_cache=True, write_behind=True)
        once = _World.restore(world.snapshot())
        twice = _World.restore(once.snapshot())
        assert world_digest(twice) == world_digest(world)

    def test_restore_does_not_alias_the_original(self, anception_world):
        restored = _World.restore(anception_world.snapshot())
        assert restored is not anception_world
        assert restored.kernel is not anception_world.kernel
        assert restored.clock is not anception_world.clock
        # but identity WITHIN the restored world is preserved
        assert restored.clock is restored.machine.clock

    def test_stable_digest_survives_restore_roundtrip(self):
        world = _warm_world(read_cache=True)
        restored = _World.restore(world.snapshot())
        assert (stable_pickle_digest(sorted(world.anception.fd_tables))
                == stable_pickle_digest(
                    sorted(restored.anception.fd_tables)))


class TestRestoreEqualsBoot:
    """snapshot → restore → run ≡ straight run, across the knob matrix."""

    @pytest.mark.parametrize("placement",
                             ["by-uid", "by-trust-class", "by-load"])
    @pytest.mark.parametrize("cvms", [1, 4])
    def test_resumed_run_matches_straight_run(self, placement, cvms):
        knobs = dict(read_cache=True, write_behind=True,
                     binder_ring=True, cvms=cvms, placement=placement)
        # Straight world: warmup + one more run, never snapshotted.
        straight = _warm_world(**knobs)
        run_traced("write4k", seed=1, world=straight)
        # Split world: identical warmup, snapshot, restore, same run.
        split = _warm_world(**knobs)
        restored = _World.restore(split.snapshot())
        run_traced("write4k", seed=1, world=restored)
        assert world_digest(restored) == world_digest(straight)

    def test_resume_twice_from_one_blob(self):
        blob = _warm_world(read_cache=True, write_behind=True).snapshot()
        first = _World.restore(blob)
        second = _World.restore(blob)
        run_traced("write4k", seed=2, world=first)
        run_traced("write4k", seed=2, world=second)
        assert world_digest(first) == world_digest(second)


class TestMidChaosResume:
    """An armed fault engine travels with its cursor and PRNG intact."""

    # Timing + cache faults only: they advance the engine's cursor and
    # PRNG without surfacing errnos that would abort the workload body.
    PLAN = "channel.stall:nth=3;cache.stale:nth=5;channel.stall:every=7"

    def _armed(self):
        world, _ctx = boot_obs_world(read_cache=True, write_behind=True)
        engine = FaultEngine(FaultPlan.parse(self.PLAN), seed=11)
        engine.arm(world.clock)
        return world

    @staticmethod
    def _cursor(engine):
        """The engine's observable trigger state."""
        return (engine._occurrences, engine._fires,
                engine.rng.getstate(),
                [(f["site"], f["occurrence"]) for f in engine.fired])

    def test_engine_section_restores_armed(self):
        world = self._armed()
        restored = _World.restore(world.snapshot())
        assert restored.clock.faults is not None
        assert (self._cursor(restored.clock.faults)
                == self._cursor(world.clock.faults))
        assert restored.clock.faults.clock is restored.clock

    def test_mid_campaign_cursor_is_intact(self):
        # Fire part of the plan, snapshot, and compare the engine's
        # cursor after the straight world fired the same prefix.
        straight = self._armed()
        split = self._armed()
        run_traced("write4k", seed=3, world=straight)
        run_traced("write4k", seed=3, world=split)
        restored = _World.restore(split.snapshot())
        assert (self._cursor(restored.clock.faults)
                == self._cursor(straight.clock.faults))
        # …and the remainder of both campaigns agrees.
        run_traced("write4k", seed=4, world=straight)
        run_traced("write4k", seed=4, world=restored)
        assert world_digest(restored) == world_digest(straight)
        assert (self._cursor(restored.clock.faults)
                == self._cursor(straight.clock.faults))


class TestAudit:
    def test_full_knob_world_is_fully_audited(self):
        world = _warm_world(**FULL_KNOBS)
        manifest = audit_components(world)
        assert manifest == component_manifest(world)

    def test_unaudited_component_fails_with_its_name(self, anception_world):
        class Rogue:
            pass

        Rogue.__module__ = "repro.test_rogue"
        anception_world.kernel._rogue = Rogue()
        try:
            with pytest.raises(SnapshotError,
                               match=r"repro\.test_rogue\..*Rogue"):
                anception_world.snapshot()
        finally:
            del anception_world.kernel._rogue

    def test_exemptions_carry_rationale(self):
        for name, why in SNAPSHOT_EXEMPT.items():
            assert name.startswith("repro."), name
            assert len(why) > 20, f"exemption {name} lacks a rationale"

    def test_walk_yields_each_object_once(self, anception_world):
        ids = [id(obj) for obj in walk_components(anception_world)]
        assert len(ids) == len(set(ids))


class TestWorldApi:
    def test_world_snapshot_restore_are_module_functions(self):
        world = AnceptionWorld()
        assert world.snapshot() == snapshot_world(world)
        assert isinstance(_World.restore(world.snapshot()),
                          AnceptionWorld)

    def test_restored_app_context_is_usable(self, enrolled_ctx,
                                            anception_world):
        path = enrolled_ctx.data_path("warm.txt")
        fd = enrolled_ctx.libc.open(path, 0o102, 0o600)
        enrolled_ctx.libc.write(fd, b"before-snapshot")
        enrolled_ctx.libc.close(fd)
        restored = _World.restore(anception_world.snapshot())
        rctx = restored.zygote.launched[-1].ctx
        rfd = rctx.libc.open(rctx.data_path("warm.txt"), 0, 0)
        assert rctx.libc.read(rfd, 64) == b"before-snapshot"
        rctx.libc.close(rfd)
