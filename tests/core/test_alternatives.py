"""The abandoned prototype designs (Section IV design space)."""

import pytest

from repro.core.alternatives import (
    asim_model,
    interception_comparison,
    kprobes_model,
    ptrace_model,
    shared_pages_transport,
    socket_transport,
    transport_comparison,
    virtio_transport,
)
from repro.perf.costs import PAGE_SIZE


class TestInterception:
    def test_asim_is_effectively_free(self):
        assert asim_model().slowdown_on(760) == pytest.approx(1.0, abs=0.01)

    def test_ptrace_is_upwards_of_60x(self):
        """The paper's measured UML/ptrace prototype penalty."""
        slowdown = ptrace_model().slowdown_on(760)
        assert slowdown >= 60.0
        assert slowdown < 70.0

    def test_kprobes_is_whole_system(self):
        assert kprobes_model().whole_system
        assert not asim_model().whole_system
        assert not ptrace_model().whole_system

    def test_comparison_ordering(self):
        rows = interception_comparison()
        assert (
            rows["asim"]["getpid_slowdown"]
            < rows["kprobes"]["getpid_slowdown"]
            < rows["ptrace"]["getpid_slowdown"]
        )


class TestTransport:
    def test_shared_pages_is_single_copy(self):
        assert shared_pages_transport().copies == 1

    def test_socket_carries_four_copies(self):
        assert socket_transport().copies == 4

    def test_copy_count_dominates_large_transfers(self):
        size = 64 * PAGE_SIZE
        pages = shared_pages_transport().transfer_ns(size)
        virtio = virtio_transport().transfer_ns(size)
        socket = socket_transport().transfer_ns(size)
        assert pages < virtio < socket
        # asymptotically the ratio approaches the copy-count ratio
        assert socket / pages == pytest.approx(4.0, rel=0.15)

    def test_comparison_relative_to_shipped_design(self):
        rows = transport_comparison()
        assert rows["shared-pages"]["relative"] == 1.0
        assert rows["virtio"]["relative"] > 1.5
        assert rows["socket"]["relative"] > 3.0

    def test_empty_payload_still_costs_a_chunk(self):
        assert shared_pages_transport().transfer_ns(0) > 0
