"""The interposition layer end-to-end: routing, fd spaces, blocking."""

import pytest

from repro.errors import SyscallError
from repro.kernel import vfs
from repro.kernel.process import Credentials


ROOT = Credentials(0)


class TestFileRedirection:
    def test_data_writes_land_in_cvm_only(self, anception_world,
                                          enrolled_ctx):
        enrolled_ctx.libc.write_file(
            enrolled_ctx.data_path("f.txt"), b"cvm-bytes"
        )
        cvm_vfs = anception_world.cvm.kernel.vfs
        host_vfs = anception_world.kernel.vfs
        path = enrolled_ctx.data_path("f.txt")
        assert cvm_vfs.exists(path, ROOT)
        assert not host_vfs.exists(path, ROOT)

    def test_reads_come_from_cvm(self, anception_world, enrolled_ctx):
        path = enrolled_ctx.data_path("g.txt")
        anception_world.cvm.copy_in_file(path, b"pre-staged",
                                         enrolled_ctx.task.credentials.uid)
        assert enrolled_ctx.libc.read_file(path) == b"pre-staged"

    def test_initial_data_copied_at_enrollment(self, anception_world,
                                               enrolled_ctx):
        assert enrolled_ctx.libc.read_file(
            enrolled_ctx.data_path("seed.txt")
        ) == b"seed-content"

    def test_system_reads_served_by_host(self, anception_world,
                                         enrolled_ctx):
        meta = enrolled_ctx.libc.read_elf("/system/bin/vold")
        assert meta["name"] == "vold"
        # the CVM also has a copy, but the decision log must say HOST
        decisions = [
            d for (_pid, name, d) in anception_world.anception.decision_log
            if name == "open"
        ]
        from repro.core.policy import Decision

        assert Decision.HOST in decisions

    def test_proc_self_exe_is_real_code(self, enrolled_ctx):
        data = enrolled_ctx.libc.read_file("/proc/self/exe")
        assert data.startswith(b"\x7fELF")

    def test_proc_scan_sees_cvm_processes(self, anception_world,
                                          enrolled_ctx):
        """procfs redirection: the pid scan finds the CVM's vold."""
        found = None
        for entry in enrolled_ctx.libc.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                cmdline = enrolled_ctx.libc.read_file(
                    f"/proc/{entry}/cmdline"
                )
            except SyscallError:
                continue
            if cmdline.rstrip(b"\x00") == b"/system/bin/vold":
                found = int(entry)
        cvm_vold = anception_world.cvm.android.service("vold")
        assert found == cvm_vold.task.pid

    def test_fb0_open_fails_in_cvm(self, enrolled_ctx):
        """Kernelchopper's first step dies with ENOENT (Section V-A)."""
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.open("/dev/graphics/fb0", vfs.O_RDWR)
        assert "ENOENT" in str(exc.value)

    def test_host_kernel_fd_numbering_dense(self, enrolled_ctx):
        fd1 = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("a"), vfs.O_WRONLY | vfs.O_CREAT
        )
        fd2 = enrolled_ctx.libc.open("/system/bin/sh", vfs.O_RDONLY)
        fd3 = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("b"), vfs.O_WRONLY | vfs.O_CREAT
        )
        assert len({fd1, fd2, fd3}) == 3

    def test_remote_fd_read_write_roundtrip(self, enrolled_ctx):
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("rw"), vfs.O_RDWR | vfs.O_CREAT
        )
        enrolled_ctx.libc.write(fd, b"0123456789")
        enrolled_ctx.libc.lseek(fd, 2, vfs.SEEK_SET)
        assert enrolled_ctx.libc.read(fd, 4) == b"2345"
        enrolled_ctx.libc.close(fd)

    def test_close_releases_both_sides(self, anception_world, enrolled_ctx):
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("c"), vfs.O_WRONLY | vfs.O_CREAT
        )
        table = anception_world.anception.fd_tables[enrolled_ctx.task.pid]
        assert table.is_remote(fd)
        enrolled_ctx.libc.close(fd)
        assert not table.is_remote(fd)
        assert fd not in enrolled_ctx.task.fd_table

    def test_dup_of_remote_fd(self, anception_world, enrolled_ctx):
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("d"), vfs.O_RDWR | vfs.O_CREAT
        )
        enrolled_ctx.libc.write(fd, b"shared")
        fd2 = enrolled_ctx.libc.syscall("dup", fd)
        table = anception_world.anception.fd_tables[enrolled_ctx.task.pid]
        assert table.is_remote(fd2)
        enrolled_ctx.libc.lseek(fd2, 0, vfs.SEEK_SET)
        assert enrolled_ctx.libc.read(fd2, 6) == b"shared"


class TestNetworkRedirection:
    def test_sockets_live_in_cvm(self, anception_world, enrolled_ctx):
        from repro.kernel.net import AF_INET, SOCK_STREAM

        class Server:
            def __init__(self):
                self.seen = []

            def handle_data(self, conn, data):
                self.seen.append(data)
                return b"ok"

        server = Server()
        anception_world.internet.register_server(("svc", 1), server)
        fd = enrolled_ctx.libc.socket(AF_INET, SOCK_STREAM, 0)
        enrolled_ctx.libc.connect(fd, ("svc", 1))
        enrolled_ctx.libc.send(fd, b"hello")
        assert enrolled_ctx.libc.recv(fd, 10) == b"ok"
        assert server.seen == [b"hello"]
        # the connection was made by the CVM's stack
        assert anception_world.internet.connection_log[-1][1] == "cvm"


class TestBinderRouting:
    def test_ui_transaction_stays_on_host(self, anception_world,
                                          enrolled_ctx):
        reply = enrolled_ctx.create_window("w")
        assert "window_id" in reply
        host_wm = anception_world.system.service("window")
        assert ("create_window", enrolled_ctx.task.pid) in host_wm.call_log

    def test_delegated_transaction_reaches_cvm_service(self, anception_world,
                                                       enrolled_ctx):
        reply = enrolled_ctx.call_service("location", "get_fix")
        assert reply["lat"] == pytest.approx(42.2808)
        cvm_location = anception_world.cvm.android.service("location")
        assert cvm_location.call_log

    def test_host_has_no_delegated_services(self, anception_world):
        assert not anception_world.system.has_service("location")


class TestBlockedCalls:
    def test_blocked_call_eperm_and_recorded(self, anception_world,
                                             enrolled_ctx):
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.syscall("init_module", "rootkit.ko")
        assert "EPERM" in str(exc.value)
        assert (
            enrolled_ctx.task.pid, "init_module"
        ) in anception_world.anception.blocked_calls

    def test_all_blocked_class_calls(self, enrolled_ctx):
        for name in ("delete_module", "reboot", "kexec_load", "ptrace",
                     "pivot_root", "swapon"):
            with pytest.raises(SyscallError):
                enrolled_ctx.libc.syscall(name)


class TestHostClassCalls:
    def test_getpid_runs_on_host(self, enrolled_ctx):
        assert enrolled_ctx.libc.getpid() == enrolled_ctx.task.pid

    def test_kill_uses_host_pid_space(self, anception_world, enrolled_ctx):
        victim = anception_world.kernel.spawn_task(
            "victim", enrolled_ctx.task.credentials
        )
        enrolled_ctx.libc.kill(victim.pid, 9)
        assert not victim.is_alive()


class TestCvmCrashHandling:
    def test_calls_fail_with_eio_after_crash(self, anception_world,
                                             enrolled_ctx):
        try:
            anception_world.cvm.kernel.panic("induced")
        except Exception:
            pass
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.write_file(
                enrolled_ctx.data_path("late"), b"x"
            )
        assert "EIO" in str(exc.value)

    def test_host_survives_cvm_crash(self, anception_world, enrolled_ctx):
        try:
            anception_world.cvm.kernel.panic("induced")
        except Exception:
            pass
        assert not anception_world.kernel.crashed
        assert enrolled_ctx.libc.getpid() == enrolled_ctx.task.pid


class TestStats:
    def test_stats_shape(self, anception_world, enrolled_ctx):
        enrolled_ctx.libc.write_file(enrolled_ctx.data_path("s"), b"x")
        stats = anception_world.anception.stats()
        assert stats["proxies"] >= 1
        assert stats["decisions"]["redirect"] >= 1
        assert not stats["cvm_crashed"]
