"""The host<->guest channel: chunking, byte accounting, signalling."""

import pytest

from repro.core.channel import AnceptionChannel
from repro.hypervisor import LguestHypervisor
from repro.kernel.kernel import Machine
from repro.perf.costs import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine(total_mb=256)


@pytest.fixture
def channel(machine):
    hypervisor = LguestHypervisor(machine, guest_mb=32)
    hypervisor.launch_guest()
    return AnceptionChannel(hypervisor, machine.costs, num_pages=4)


class TestTransfers:
    def test_capacity(self, channel):
        assert channel.capacity == 4 * PAGE_SIZE

    def test_send_to_guest_counts_bytes(self, channel):
        channel.send_to_guest(b"x" * 100)
        assert channel.bytes_to_guest == 100
        assert channel.transfers == 1

    def test_send_to_host_counts_bytes(self, channel):
        channel.send_to_host(b"y" * 50)
        assert channel.bytes_to_host == 50

    def test_large_transfer_crosses_in_chunks(self, channel, machine):
        data = b"z" * (3 * PAGE_SIZE + 10)
        machine.clock.enable_trace()
        channel.send_to_guest(data)
        charges = machine.clock.drain_trace()
        chunk_charges = [c for c in charges if c[0] == "channel:chunk"]
        assert len(chunk_charges) == 4  # ceil(3*4096+10 / 4096)

    def test_empty_payload_still_pays_one_chunk(self, channel, machine):
        before = machine.clock.now_ns
        channel.send_to_guest(b"")
        assert machine.clock.now_ns - before == machine.costs.chunk_fixed_ns

    def test_per_byte_cost_direction_asymmetric(self, channel, machine):
        data = b"d" * PAGE_SIZE
        with machine.clock.measure() as inbound:
            channel.send_to_guest(data)
        with machine.clock.measure() as outbound:
            channel.send_to_host(data)
        assert inbound.elapsed_ns > outbound.elapsed_ns

    def test_data_actually_traverses_shared_pages(self, channel):
        channel.send_to_guest(b"REAL-BYTES")
        assert channel.shared.read(10, from_guest=True) == b"REAL-BYTES"


class TestSignalling:
    def test_signal_guest_is_interrupt(self, channel):
        channel.signal_guest("call")
        assert channel.hypervisor.interrupt_count == 1

    def test_signal_host_is_hypercall(self, channel):
        channel.signal_host("done")
        assert channel.hypervisor.hypercall_count == 1

    def test_stats_snapshot(self, channel):
        channel.send_to_guest(b"abc")
        channel.signal_guest("x")
        channel.send_to_host(b"de")
        channel.signal_host("y")
        stats = channel.stats()
        assert stats["transfers"] == 2
        assert stats["bytes_to_guest"] == 3
        assert stats["bytes_to_host"] == 2
        assert stats["hypercalls"] == 1
        assert stats["interrupts"] == 1
