"""The host<->guest channel: chunking, byte accounting, signalling."""

import pytest

from repro.core.channel import AnceptionChannel
from repro.hypervisor import LguestHypervisor
from repro.kernel.kernel import Machine
from repro.perf.costs import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine(total_mb=256)


@pytest.fixture
def channel(machine):
    hypervisor = LguestHypervisor(machine, guest_mb=32)
    hypervisor.launch_guest()
    return AnceptionChannel(hypervisor, machine.costs, num_pages=4)


class TestTransfers:
    def test_capacity(self, channel):
        assert channel.capacity == 4 * PAGE_SIZE

    def test_send_to_guest_counts_bytes(self, channel):
        channel.send_to_guest(b"x" * 100)
        assert channel.bytes_to_guest == 100
        assert channel.transfers == 1

    def test_send_to_host_counts_bytes(self, channel):
        channel.send_to_host(b"y" * 50)
        assert channel.bytes_to_host == 50

    def test_large_transfer_crosses_in_chunks(self, channel, machine):
        data = b"z" * (3 * PAGE_SIZE + 10)
        machine.clock.enable_trace()
        channel.send_to_guest(data)
        charges = machine.clock.drain_trace()
        chunk_charges = [c for c in charges if c[0] == "channel:chunk"]
        assert len(chunk_charges) == 4  # ceil(3*4096+10 / 4096)

    def test_empty_payload_still_pays_one_chunk(self, channel, machine):
        before = machine.clock.now_ns
        channel.send_to_guest(b"")
        assert machine.clock.now_ns - before == machine.costs.chunk_fixed_ns

    def test_per_byte_cost_direction_asymmetric(self, channel, machine):
        data = b"d" * PAGE_SIZE
        with machine.clock.measure() as inbound:
            channel.send_to_guest(data)
        with machine.clock.measure() as outbound:
            channel.send_to_host(data)
        assert inbound.elapsed_ns > outbound.elapsed_ns

    def test_data_actually_traverses_shared_pages(self, channel):
        channel.send_to_guest(b"REAL-BYTES")
        assert channel.shared.read(10, from_guest=True) == b"REAL-BYTES"


class TestSignalling:
    def test_signal_guest_is_interrupt(self, channel):
        channel.signal_guest("call")
        assert channel.hypervisor.interrupt_count == 1

    def test_signal_host_is_hypercall(self, channel):
        channel.signal_host("done")
        assert channel.hypervisor.hypercall_count == 1

    def test_stats_snapshot(self, channel):
        channel.send_to_guest(b"abc")
        channel.signal_guest("x")
        channel.send_to_host(b"de")
        channel.signal_host("y")
        stats = channel.stats()
        assert stats["transfers"] == 2
        assert stats["bytes_to_guest"] == 3
        assert stats["bytes_to_host"] == 2
        assert stats["hypercalls"] == 1
        assert stats["interrupts"] == 1


class TestZeroCopySingleCrc:
    """PR 9 bugfix pin: one buffer wrap, one CRC per unfaulted transfer.

    ``_transfer`` used to materialise ``bytes(data)`` twice (once up
    front, once per chunk inside ``_chunked``) and CRC the same
    unmodified buffer twice.  Now every stage operates on memoryview
    windows over the caller's buffer and the integrity CRC reuses the
    send CRC whenever the fault engine did not rewrite the payload.
    """

    def _count_crcs(self, monkeypatch):
        import repro.core.channel as channel_mod
        from zlib import crc32 as real_crc32
        calls = []

        def counting(data, *args):
            calls.append(data)
            return real_crc32(data, *args)

        monkeypatch.setattr(channel_mod, "crc32", counting)
        return calls

    def test_unfaulted_transfer_computes_crc_exactly_once(
            self, channel, monkeypatch):
        calls = self._count_crcs(monkeypatch)
        channel.send_to_guest(b"q" * (2 * PAGE_SIZE + 7))
        assert len(calls) == 1
        assert channel.transfers == 1
        assert channel.integrity_failures == 0

    def test_traced_transfer_still_computes_crc_once(
            self, channel, machine, monkeypatch):
        # The instrumented (non-dormant) walk takes the chunked span
        # path; the single-CRC discipline must hold there too.
        calls = self._count_crcs(monkeypatch)
        machine.clock.enable_trace()
        channel.send_to_guest(b"t" * (PAGE_SIZE + 3))
        machine.clock.disable_trace()
        assert len(calls) == 1

    def test_fault_rewritten_payload_gets_a_fresh_crc(
            self, channel, machine, monkeypatch):
        from repro.errors import ChannelIntegrityError
        from repro.faults.engine import FaultEngine
        from repro.faults.plan import FaultPlan

        calls = self._count_crcs(monkeypatch)
        engine = FaultEngine(FaultPlan.parse("channel.corrupt:nth=1"),
                             seed=0)
        engine.arm(machine.clock)
        try:
            with pytest.raises(ChannelIntegrityError):
                channel.send_to_guest(b"r" * 100)
        finally:
            engine.disarm()
        # send CRC + fresh CRC over the rewritten payload: exactly two.
        assert len(calls) == 2
        assert channel.integrity_failures == 1

    def test_chunks_are_views_over_the_callers_buffer(
            self, channel, machine, monkeypatch):
        # Zero-copy identity: every chunk written to the shared pages is
        # a window over the caller's own buffer, not a materialised copy
        # — in both the dormant fast path and the instrumented walk.
        data = b"z" * (2 * PAGE_SIZE + 10)
        seen = []
        real_write = channel.shared.write

        def recording_write(chunk, offset=0, from_guest=False):
            seen.append(chunk)
            return real_write(chunk, offset=offset, from_guest=from_guest)

        monkeypatch.setattr(channel.shared, "write", recording_write)
        channel.send_to_guest(data)  # dormant fast path
        machine.clock.enable_trace()
        channel.send_to_guest(data)  # instrumented walk
        machine.clock.disable_trace()
        assert len(seen) == 6  # 3 chunks per transfer
        for chunk in seen:
            assert type(chunk) is memoryview
            assert chunk.obj is data
