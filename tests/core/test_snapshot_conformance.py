"""Snapshot-coverage conformance: every stateful component is audited.

Mirror of the syscall-conformance suite, for serialization: the
universe is every repro-package class reachable from a booted world
(the object graph the snapshot must capture), and every member must
either declare a ``__snapshot__`` audit marker or carry a documented
exemption in :data:`SNAPSHOT_EXEMPT`.  Each check fails with the list
of missing names, so adding a stateful component without auditing its
serialization turns CI red with a to-do list.

The matrix spans the knob space: a bare native world, default
delegation, and the full configuration (read cache + write-behind +
binder ring + 4-lane pool) after actually running a workload — lazily
created state (windows, cache pages, proxies) must be in-universe too.
"""

import enum

import pytest

from repro.core.snapshot import (
    SNAPSHOT_EXEMPT,
    audit_components,
    component_manifest,
    walk_components,
)
from repro.obs.runner import boot_obs_world, run_traced
from repro.world import AnceptionWorld, NativeWorld


def _worlds():
    full, _ctx = boot_obs_world(read_cache=True, write_behind=True,
                                binder_ring=True, cvms=4,
                                placement="by-trust-class")
    run_traced("write4k", seed=0, world=full)
    return {
        "native": NativeWorld(),
        "anception": AnceptionWorld(),
        "full-knobs": full,
    }


@pytest.fixture(scope="module")
def universe():
    """{qualified class name: class} reachable from the world matrix."""
    classes = {}
    for world in _worlds().values():
        for obj in walk_components(world):
            cls = type(obj)
            classes[f"{cls.__module__}.{cls.__qualname__}"] = cls
    return classes


class TestUniverse:
    def test_universe_is_nonempty_and_stable_floor(self, universe):
        assert len(universe) >= 60, sorted(universe)

    def test_core_components_are_in_universe(self, universe):
        expected = {
            "repro.kernel.kernel.Kernel",
            "repro.kernel.vfs.VFS",
            "repro.kernel.vfs.Inode",
            "repro.core.anception.AnceptionLayer",
            "repro.core.anception.WriteBehind",
            "repro.core.anception.BinderRing",
            "repro.core.pool.CVMPool",
            "repro.core.proxy.ProxyManager",
            "repro.core.page_cache.HostPageCache",
        }
        missing = sorted(expected - set(universe))
        assert not missing, (
            f"expected components not reachable from any matrix world "
            f"(walker or boot regression): {missing}"
        )

    def test_every_component_is_marked_or_exempt(self, universe):
        missing = sorted(
            name for name, cls in universe.items()
            if not issubclass(cls, enum.Enum)
            and getattr(cls, "__snapshot__", None) not in ("auto",
                                                           "custom")
            and name not in SNAPSHOT_EXEMPT
        )
        assert not missing, (
            f"components without a __snapshot__ audit marker (mark "
            f"'auto' if default pickling is complete and deterministic, "
            f"'custom' if the class manages its own state, or document "
            f"an exemption): {missing}"
        )

    def test_audit_accepts_every_matrix_world(self):
        for label, world in _worlds().items():
            manifest = audit_components(world)
            assert manifest == component_manifest(world), label


class TestMarkers:
    def test_marker_values_are_valid(self, universe):
        bad = sorted(
            f"{name}={cls.__dict__.get('__snapshot__')!r}"
            for name, cls in universe.items()
            if "__snapshot__" in cls.__dict__
            and cls.__dict__["__snapshot__"] not in ("auto", "custom")
        )
        assert not bad, f"unknown __snapshot__ marker values: {bad}"

    def test_custom_markers_back_their_claim(self, universe):
        # 'custom' asserts the class manages its own serialization;
        # hold it to that.
        hollow = sorted(
            name for name, cls in universe.items()
            if getattr(cls, "__snapshot__", None) == "custom"
            and not any(
                callable(getattr(cls, hook, None))
                for hook in ("__getstate__", "__setstate__",
                             "__reduce__", "__reduce_ex__",
                             "snapshot_state", "restore_state")
            )
        )
        assert not hollow, (
            f"classes marked __snapshot__='custom' without any "
            f"serialization hook: {hollow}"
        )


class TestExemptions:
    def test_exemptions_name_real_attributes(self):
        import importlib

        for qualified in SNAPSHOT_EXEMPT:
            module_name, _sep, attr = qualified.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), (
                f"SNAPSHOT_EXEMPT entry {qualified!r} names nothing "
                f"importable"
            )

    def test_exemptions_and_markers_are_disjoint(self, universe):
        overlap = sorted(
            name for name in SNAPSHOT_EXEMPT
            if name in universe
            and getattr(universe[name], "__snapshot__", None)
            in ("auto", "custom")
        )
        assert not overlap, (
            f"components both audited and exempt (drop one): {overlap}"
        )

    def test_every_exemption_has_a_rationale(self):
        for name, why in SNAPSHOT_EXEMPT.items():
            assert isinstance(why, str) and len(why.split()) >= 5, (
                f"exemption {name!r} needs a real rationale, "
                f"not {why!r}"
            )
