"""Syscall-coverage conformance: the redirect table is fully plumbed.

For every redirect-class syscall the simulated kernel actually
implements, three things must exist:

1. a **marshal entry** — fd-taking calls must appear in the marshal
   layer's fd-translation sets, or host descriptor numbers would ship
   verbatim into the CVM's fd space;
2. a **libc veneer** — a method on :class:`~repro.kernel.libc.Libc`
   (possibly under an alias, e.g. ``pread64`` -> ``pread``) so scripted
   programs can reach the call;
3. **>= 1 differential op-script** in the catalogue exercising it in
   all three modes, or a documented exemption.

Each check fails with the list of missing names, so adding a syscall
handler without finishing its plumbing turns CI red with a to-do list.
"""

from __future__ import annotations

import inspect

from repro.android.app import AppContext
from repro.android.binder import (
    BINDER_IOCTL_REQUESTS,
    DELEGATED_BINDER_REQUESTS,
    Transaction,
)
from repro.core.marshal import FD_FIRST_CALLS, FD_PAIR_CALLS, encoded_size
from repro.core.policy import FD_CALLS
from repro.kernel.kernel import Machine
from repro.kernel.libc import Libc
from repro.kernel.syscalls import CATALOGUE, SyscallClass, classify

from tests.differential.catalogue import (
    BINDER_EXEMPT,
    BINDER_SCRIPTS,
    EXEMPT,
    SCRIPTS,
    SYSCALL_ALIASES,
    covered_binder_requests,
    covered_ops,
)


def redirect_universe():
    """Redirect-class syscalls with a live kernel handler."""
    machine = Machine()
    handlers = set(machine.kernel._handlers)
    return sorted(
        name for name in handlers
        if name in CATALOGUE and classify(name) is SyscallClass.REDIRECT
    )


FD_TAKING = frozenset({
    # Universe calls whose first argument is a descriptor and therefore
    # must be rewritten into the proxy's fd space when forwarded.
    "read", "write", "readv", "writev", "pread64", "pwrite64",
    "lseek", "_llseek", "fstat", "fstat64", "fsync", "fdatasync",
    "ftruncate", "ftruncate64", "fchmod", "fchown", "fchown32",
    "send", "sendto", "recv", "recvfrom", "connect", "bind",
    "listen", "accept",
})

FD_PAIR_TAKING = frozenset({"sendfile"})


class TestUniverse:
    def test_universe_is_nonempty_and_stable_floor(self):
        universe = redirect_universe()
        assert len(universe) >= 52, universe

    def test_exemptions_are_real_syscalls(self):
        universe = set(redirect_universe())
        ghosts = sorted(set(EXEMPT) - universe)
        assert not ghosts, (
            f"EXEMPT names not in the redirect universe: {ghosts}"
        )

    def test_aliases_point_at_real_veneers(self):
        missing = sorted(
            alias for alias in set(SYSCALL_ALIASES.values())
            if not callable(getattr(Libc, alias, None))
        )
        assert not missing, f"alias targets without a veneer: {missing}"


class TestMarshalEntries:
    def test_fd_taking_calls_have_translation_entries(self):
        universe = set(redirect_universe())
        missing = sorted((FD_TAKING & universe) - FD_FIRST_CALLS)
        assert not missing, (
            f"fd-taking redirect calls missing from FD_FIRST_CALLS "
            f"(host fds would leak into the CVM): {missing}"
        )

    def test_fd_pair_calls_have_translation_entries(self):
        universe = set(redirect_universe())
        missing = sorted((FD_PAIR_TAKING & universe) - FD_PAIR_CALLS)
        assert not missing, (
            f"two-fd redirect calls missing from FD_PAIR_CALLS: {missing}"
        )

    def test_no_path_call_masquerades_as_fd_first(self):
        # getdents takes a path in this simulation (listdir veneer);
        # translate_args only rewrites int first arguments, so a path
        # name in FD_FIRST_CALLS is harmless — but a genuinely
        # fd-taking name OUTSIDE the union above must not exist.
        universe = set(redirect_universe())
        unaccounted = sorted(
            (FD_FIRST_CALLS | FD_PAIR_CALLS) & universe
            - FD_TAKING - FD_PAIR_TAKING - {"getdents"}
        )
        assert not unaccounted, (
            f"calls translated as fd-first but not catalogued as "
            f"fd-taking here — update FD_TAKING: {unaccounted}"
        )


class TestLibcVeneers:
    def test_every_redirect_call_has_a_veneer(self):
        missing = []
        for name in redirect_universe():
            veneer = SYSCALL_ALIASES.get(name, name)
            method = getattr(Libc, veneer, None)
            if not callable(method):
                missing.append(f"{name} (expected veneer {veneer!r})")
        assert not missing, f"redirect calls without a libc veneer: {missing}"

    def test_veneers_are_thin(self):
        # A veneer must stay a one-call wrapper: it forwards to
        # self.syscall and adds no semantics the interposition layer
        # would miss.
        for name in redirect_universe():
            veneer = SYSCALL_ALIASES.get(name, name)
            source = inspect.getsource(getattr(Libc, veneer))
            assert "self.syscall(" in source, (
                f"veneer {veneer!r} does not forward through "
                f"kernel.syscall"
            )


class TestScriptCoverage:
    def test_every_redirect_call_has_a_differential_script(self):
        ops = covered_ops()
        missing = []
        for name in redirect_universe():
            if name in EXEMPT:
                continue
            veneer = SYSCALL_ALIASES.get(name, name)
            if veneer not in ops:
                missing.append(f"{name} (veneer {veneer!r})")
        assert not missing, (
            f"redirect calls with no catalogue op-script: {missing}"
        )

    def test_catalogue_scripts_are_well_formed(self):
        for label, entry in SCRIPTS.items():
            assert entry["script"], f"catalogue script {label!r} is empty"
            assert isinstance(entry["needs_server"], bool)
            for step in entry["script"]:
                assert isinstance(step[0], str), (label, step)
                assert callable(getattr(Libc, step[0], None)), (
                    f"script {label!r} uses unknown op {step[0]!r}"
                )


class TestBinderUniverse:
    """The binder device's conformance universe is its ioctl surface.

    Binder calls reach the kernel through one syscall (``ioctl``), so
    the redirect-table checks above cannot see them; the universe here
    is the set of binder ioctl request codes, and every request the
    layer delegates must carry differential coverage or a documented
    exemption — failing with the list of missing names, same contract
    as the syscall universe.
    """

    def test_universe_is_nonempty(self):
        assert BINDER_IOCTL_REQUESTS, "binder ioctl universe is empty"
        for name, code in BINDER_IOCTL_REQUESTS.items():
            assert isinstance(code, int), (name, code)

    def test_every_request_is_delegated_or_exempt(self):
        missing = sorted(
            set(BINDER_IOCTL_REQUESTS)
            - set(DELEGATED_BINDER_REQUESTS)
            - set(BINDER_EXEMPT)
        )
        assert not missing, (
            f"binder ioctl requests neither delegated nor exempt "
            f"(delegate them or document why not): {missing}"
        )

    def test_delegated_and_exempt_are_disjoint(self):
        overlap = sorted(set(DELEGATED_BINDER_REQUESTS) & set(BINDER_EXEMPT))
        assert not overlap, (
            f"binder requests both delegated and exempt: {overlap}"
        )

    def test_exemptions_are_real_requests(self):
        ghosts = sorted(set(BINDER_EXEMPT) - set(BINDER_IOCTL_REQUESTS))
        assert not ghosts, (
            f"BINDER_EXEMPT names not in the ioctl universe: {ghosts}"
        )

    def test_delegated_requests_are_real_requests(self):
        ghosts = sorted(
            set(DELEGATED_BINDER_REQUESTS) - set(BINDER_IOCTL_REQUESTS)
        )
        assert not ghosts, (
            f"DELEGATED_BINDER_REQUESTS names not in the ioctl "
            f"universe: {ghosts}"
        )


class TestBinderMarshalCoverage:
    def test_ioctl_is_fd_translated(self):
        # Binder transactions ride ioctl(binder_fd, ...); the fd must be
        # rewritten into the proxy's fd space like any delegated call.
        assert "ioctl" in FD_FIRST_CALLS

    def test_transaction_payload_size_uses_marshal_sizing(self):
        payload = {"blob": "x" * 112, "n": 7}
        txn = Transaction("location", "get_fix", payload)
        assert txn.payload_size == encoded_size(payload)

    def test_transaction_encodes_as_payload_plus_header(self):
        txn = Transaction("location", "get_fix", {"blob": "x" * 112})
        assert encoded_size(txn) == txn.payload_size + 16

    def test_large_parcel_sizing_is_not_repr_based(self):
        # A 1 MiB parcel must size as its bytes, not as the repr of the
        # dict holding it (the PR 7 bugfix this test pins).
        blob = "z" * (1 << 20)
        txn = Transaction("location", "get_fix", {"blob": blob})
        assert txn.payload_size == encoded_size({"blob": blob})
        assert txn.payload_size < len(repr({"blob": blob}))


class TestBinderScriptCoverage:
    def test_every_delegated_request_has_a_binder_script(self):
        covered = covered_binder_requests()
        missing = sorted(set(DELEGATED_BINDER_REQUESTS) - covered)
        assert not missing, (
            f"delegated binder requests with no catalogue op-script: "
            f"{missing}"
        )

    def test_binder_scripts_tag_real_requests(self):
        ghosts = sorted(covered_binder_requests()
                        - set(BINDER_IOCTL_REQUESTS))
        assert not ghosts, (
            f"binder scripts tagged with unknown requests: {ghosts}"
        )

    def test_binder_scripts_are_well_formed(self):
        for label, entry in BINDER_SCRIPTS.items():
            assert entry["script"], f"binder script {label!r} is empty"
            assert entry["request"] in BINDER_IOCTL_REQUESTS, (label,)
            for step in entry["script"]:
                name = step[0]
                assert isinstance(name, str), (label, step)
                # Binder ops are app-context conveniences, reached via
                # the harness's ctx fallback; a libc name here would
                # silently shadow that fallback.
                assert callable(getattr(AppContext, name, None)), (
                    f"binder script {label!r} uses unknown ctx op "
                    f"{name!r}"
                )
                assert not callable(getattr(Libc, name, None)), (
                    f"binder script {label!r} op {name!r} collides "
                    f"with a libc veneer"
                )
