"""Batched delegation: vectored I/O, batch windows, doorbell coalescing.

The headline invariant of the ring transport refactor: a 64-entry
vectored call pays ONE doorbell pair where the naive transport paid 64,
while a lone redirected call keeps its classic two-world-switch shape
(pinned separately in test_invariants.py).
"""

import pytest

from repro.errors import SimulationError, SyscallError
from repro.kernel import vfs
from repro.obs.bus import TraceBus
from repro.world import AnceptionWorld


def _open_scratch(ctx, name, flags=vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC):
    return ctx.libc.open(ctx.data_path(name), flags)


class TestVectoredWrites:
    def test_writev_64_entries_rides_one_doorbell_pair(self,
                                                       anception_world,
                                                       enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        fd = _open_scratch(enrolled_ctx, "v.bin")
        irq_before = hypervisor.interrupt_count
        hyp_before = hypervisor.hypercall_count
        total = enrolled_ctx.libc.writev(
            fd, [b"x" * 16 for _ in range(64)]
        )
        assert total == 64 * 16
        # >= 4x fewer doorbells than one-pair-per-call is the acceptance
        # floor; the ring does far better: exactly one pair.
        assert hypervisor.interrupt_count == irq_before + 1
        assert hypervisor.hypercall_count == hyp_before + 1

    def test_writev_data_round_trips(self, enrolled_ctx):
        fd = _open_scratch(enrolled_ctx, "rt.bin")
        buffers = [bytes([0x41 + i]) * 8 for i in range(5)]
        assert enrolled_ctx.libc.writev(fd, buffers) == 40
        enrolled_ctx.libc.lseek(fd, 0)
        assert enrolled_ctx.libc.read(fd, 40) == b"".join(buffers)
        enrolled_ctx.libc.close(fd)

    def test_readv_returns_per_entry_chunks(self, enrolled_ctx):
        fd = _open_scratch(enrolled_ctx, "rv.bin")
        enrolled_ctx.libc.write(fd, b"abcdefghij")
        enrolled_ctx.libc.lseek(fd, 0)
        chunks = enrolled_ctx.libc.readv(fd, [4, 4, 2])
        assert chunks == [b"abcd", b"efgh", b"ij"]

    def test_readv_rides_one_doorbell_pair(self, anception_world,
                                           enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        fd = _open_scratch(enrolled_ctx, "rvd.bin")
        enrolled_ctx.libc.write(fd, b"z" * 256)
        enrolled_ctx.libc.lseek(fd, 0)
        irq_before = hypervisor.interrupt_count
        enrolled_ctx.libc.readv(fd, [16] * 16)
        assert hypervisor.interrupt_count == irq_before + 1

    def test_empty_vectors_touch_nothing(self, anception_world,
                                         enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        fd = _open_scratch(enrolled_ctx, "e.bin")
        irq_before = hypervisor.interrupt_count
        assert enrolled_ctx.libc.writev(fd, []) == 0
        assert enrolled_ctx.libc.readv(fd, []) == []
        assert hypervisor.interrupt_count == irq_before

    def test_writev_matches_sequential_writes_byte_for_byte(
            self, anception_world, enrolled_ctx):
        buffers = [bytes([0x61 + i]) * 32 for i in range(8)]
        fd_v = _open_scratch(enrolled_ctx, "vec.bin")
        enrolled_ctx.libc.writev(fd_v, buffers)
        fd_s = _open_scratch(enrolled_ctx, "seq.bin")
        for buf in buffers:
            enrolled_ctx.libc.write(fd_s, buf)
        enrolled_ctx.libc.lseek(fd_v, 0)
        enrolled_ctx.libc.lseek(fd_s, 0)
        assert enrolled_ctx.libc.read(fd_v, 256) \
            == enrolled_ctx.libc.read(fd_s, 256)

    def test_writev_stops_at_first_error_like_native(self, enrolled_ctx):
        read_only = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("seed.txt"), vfs.O_RDONLY
        )
        with pytest.raises(SyscallError) as exc:
            enrolled_ctx.libc.writev(read_only, [b"a", b"b"])
        # the surfaced errno is the FIRST failure, not ECANCELED
        assert "ECANCELED" not in str(exc.value)

    def test_vector_longer_than_ring_depth_flushes_in_windows(self):
        world = AnceptionWorld(ring_depth=4)
        from tests.conftest import ScratchApp

        running = world.install_and_launch(ScratchApp())
        running.run()
        ctx = running.ctx
        fd = _open_scratch(ctx, "deep.bin")
        hypervisor = world.cvm.hypervisor
        irq_before = hypervisor.interrupt_count
        assert ctx.libc.writev(fd, [b"q" * 8 for _ in range(10)]) == 80
        flushes = hypervisor.interrupt_count - irq_before
        # 10 descriptors through a 4-deep ring: backpressure flushes,
        # but still far fewer doorbells than 10 pairs
        assert 1 <= flushes <= 4
        ctx.libc.lseek(fd, 0)
        assert ctx.libc.read(fd, 80) == b"q" * 80


class TestDoorbellCoalescing:
    def test_coalesced_doorbells_counted(self, anception_world,
                                         enrolled_ctx):
        channel = anception_world.anception.channel
        fd = _open_scratch(enrolled_ctx, "c.bin")
        before = channel.stats()["coalesced_doorbells"]
        enrolled_ctx.libc.writev(fd, [b"k" * 8 for _ in range(8)])
        after = channel.stats()["coalesced_doorbells"]
        assert after >= before + 2  # submit IRQ + completion hypercall

    def test_coalesced_event_on_the_bus(self, anception_world,
                                        enrolled_ctx):
        fd = _open_scratch(enrolled_ctx, "cb.bin")
        bus = TraceBus.install(anception_world.clock)
        with bus.capture() as capture:
            enrolled_ctx.libc.writev(fd, [b"m" * 8 for _ in range(8)])
        events = capture.events("doorbell-coalesced")
        assert len(events) == 2
        assert {e["args"]["coalesced"] for e in events} == {8}
        directions = {e["args"]["direction"] for e in events}
        assert directions == {"host->guest", "guest->host"}

    def test_single_call_is_not_counted_coalesced(self, anception_world,
                                                  enrolled_ctx):
        channel = anception_world.anception.channel
        before = channel.stats()["coalesced_doorbells"]
        enrolled_ctx.libc.syscall("mkdir", enrolled_ctx.data_path("solo"))
        assert channel.stats()["coalesced_doorbells"] == before

    def test_descriptors_retired_accounting(self, anception_world,
                                            enrolled_ctx):
        channel = anception_world.anception.channel
        fd = _open_scratch(enrolled_ctx, "r.bin")
        before = channel.stats()["descriptors_retired"]
        enrolled_ctx.libc.writev(fd, [b"t" * 4 for _ in range(6)])
        # 6 descriptors on the submit IRQ + 6 on the completion hypercall
        assert channel.stats()["descriptors_retired"] == before + 12


class TestBatchWindows:
    def test_syscall_batch_coalesces_same_fd_writes(self, anception_world,
                                                    enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        channel = anception_world.anception.channel
        fd = _open_scratch(enrolled_ctx, "b.bin")
        irq_before = hypervisor.interrupt_count
        pushed_before = channel.submit_ring.stats()["pushed"]
        results = enrolled_ctx.libc.syscall_batch(
            [("write", fd, b"part-%d|" % i) for i in range(8)]
        )
        assert results == [len(b"part-%d|" % i) for i in range(8)]
        # eight consecutive same-fd writes merge into one descriptor
        assert channel.submit_ring.stats()["pushed"] == pushed_before + 1
        assert hypervisor.interrupt_count == irq_before + 1
        enrolled_ctx.libc.lseek(fd, 0)
        assert enrolled_ctx.libc.read(fd, 64) == b"".join(
            b"part-%d|" % i for i in range(8)
        )

    def test_batch_window_defers_then_flushes_on_exit(self,
                                                      anception_world,
                                                      enrolled_ctx):
        anception = anception_world.anception
        hypervisor = anception_world.cvm.hypervisor
        fd = _open_scratch(enrolled_ctx, "w.bin")
        irq_before = hypervisor.interrupt_count
        with anception.batch(enrolled_ctx.task) as window:
            n = enrolled_ctx.libc.write(fd, b"deferred")
            assert n == 8  # optimistic completion
            assert hypervisor.interrupt_count == irq_before  # not yet
        assert hypervisor.interrupt_count == irq_before + 1
        assert window.calls_enqueued == 1

    def test_non_deferrable_call_flushes_queued_writes_first(
            self, anception_world, enrolled_ctx):
        anception = anception_world.anception
        fd = _open_scratch(enrolled_ctx, "o.bin")
        with anception.batch(enrolled_ctx.task):
            enrolled_ctx.libc.write(fd, b"ordered")
            # the read must observe the queued write (program order)
            enrolled_ctx.libc.lseek(fd, 0)
            assert enrolled_ctx.libc.read(fd, 7) == b"ordered"

    def test_batch_error_surfaces_at_flush(self, anception_world,
                                           enrolled_ctx):
        read_only = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("seed.txt"), vfs.O_RDONLY
        )
        with pytest.raises(SyscallError):
            with anception_world.anception.batch(enrolled_ctx.task):
                # optimistic success now, real errno at window exit
                enrolled_ctx.libc.write(read_only, b"doomed")

    def test_batch_windows_do_not_nest(self, anception_world,
                                       enrolled_ctx):
        anception = anception_world.anception
        with anception.batch(enrolled_ctx.task):
            with pytest.raises(SimulationError):
                with anception.batch(enrolled_ctx.task):
                    pass

    def test_pwrite_defers_without_coalescing(self, anception_world,
                                              enrolled_ctx):
        channel = anception_world.anception.channel
        fd = _open_scratch(enrolled_ctx, "p.bin")
        enrolled_ctx.libc.write(fd, b"\x00" * 16)
        pushed_before = channel.submit_ring.stats()["pushed"]
        enrolled_ctx.libc.syscall_batch([
            ("pwrite64", fd, b"AA", 0),
            ("pwrite64", fd, b"BB", 8),
        ])
        assert channel.submit_ring.stats()["pushed"] == pushed_before + 2
        assert enrolled_ctx.libc.pread(fd, 2, 0) == b"AA"
        assert enrolled_ctx.libc.pread(fd, 2, 8) == b"BB"

    def test_host_calls_inside_batch_stay_on_host(self, anception_world,
                                                  enrolled_ctx):
        hypervisor = anception_world.cvm.hypervisor
        irq_before = hypervisor.interrupt_count
        assert enrolled_ctx.libc.syscall_batch([("getpid",)]) \
            == [enrolled_ctx.task.pid]
        assert hypervisor.interrupt_count == irq_before

    def test_unenrolled_task_batch_runs_sequentially(self, native_ctx):
        assert native_ctx.libc.syscall_batch([("getpid",), ("getuid",)]) \
            == [native_ctx.task.pid, native_ctx.task.credentials.uid]


class TestRebootRebinding:
    def test_reboot_rebinds_rings_preserving_depth(self):
        world = AnceptionWorld(ring_depth=16)
        anception = world.anception
        old_channel = anception.channel
        assert old_channel.ring_depth == 16
        anception.reboot_cvm()
        assert anception.channel is not old_channel
        assert anception.channel.ring_depth == 16
        assert anception.channel.num_pages == old_channel.num_pages
        assert len(anception.channel.submit_ring) == 0

    def test_redirects_still_work_after_reboot(self, anception_world,
                                               enrolled_ctx):
        anception_world.anception.reboot_cvm()
        fd = _open_scratch(enrolled_ctx, "after.bin")
        assert enrolled_ctx.libc.writev(fd, [b"ok"] * 4) == 8
