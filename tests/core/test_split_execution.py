"""Split-execution semantics: fork, exec, mmap, msync, UID-change kill."""

import pytest

from repro.errors import ProcessKilled, SyscallError
from repro.kernel import vfs
from repro.kernel.memory import (
    MAP_ANONYMOUS,
    MAP_FIXED,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.kernel.process import Credentials
from repro.perf.costs import PAGE_SIZE


class TestForkMirroring:
    def test_fork_child_is_enrolled(self, anception_world, enrolled_ctx):
        child_pid = enrolled_ctx.libc.fork()
        child = anception_world.kernel.pids.require(child_pid)
        assert child.redirection_entry == 1
        assert child.proxy is not None
        assert child.launch_uid == enrolled_ctx.task.launch_uid

    def test_fork_child_proxy_inherits_remote_fds(self, anception_world,
                                                  enrolled_ctx):
        fd = enrolled_ctx.libc.open(
            enrolled_ctx.data_path("shared"), vfs.O_RDWR | vfs.O_CREAT
        )
        enrolled_ctx.libc.write(fd, b"parent-wrote")
        child_pid = enrolled_ctx.libc.fork()
        child = anception_world.kernel.pids.require(child_pid)
        child_libc = anception_world.libc_for(child)
        child_libc.lseek(fd, 0, vfs.SEEK_SET)
        assert child_libc.read(fd, 12) == b"parent-wrote"

    def test_native_fork_not_mirrored(self, native_world, native_ctx):
        child_pid = native_ctx.libc.fork()
        child = native_world.kernel.pids.require(child_pid)
        assert child.redirection_entry == 0
        assert child.proxy is None


class TestExecSemantics:
    def test_system_binary_execs_from_host(self, anception_world,
                                           enrolled_ctx):
        child_pid = enrolled_ctx.libc.fork()
        child = anception_world.kernel.pids.require(child_pid)
        image = anception_world.kernel.syscall(
            child, "execve", "/system/bin/sh", ()
        )
        assert child.exe_path == "/system/bin/sh"
        assert image.metadata["name"] == "sh"

    def test_user_code_execs_via_cache(self, anception_world, enrolled_ctx):
        from repro.kernel.loader import build_pseudo_elf

        blob = build_pseudo_elf("usergen", 0, {})
        path = enrolled_ctx.data_path("usergen")
        enrolled_ctx.libc.write_file(path, blob, mode=0o700)
        child_pid = enrolled_ctx.libc.fork()
        child = anception_world.kernel.pids.require(child_pid)
        anception_world.kernel.syscall(child, "execve", path, ())
        # executed from the host-side cache, not the requested path
        assert child.exe_path.startswith("/data/anception-exec-cache/")
        assert anception_world.anception.exec_cache.entries()

    def test_exec_of_missing_user_code_fails(self, anception_world,
                                             enrolled_ctx):
        with pytest.raises(SyscallError):
            enrolled_ctx.libc.execve(enrolled_ctx.data_path("ghost"))

    def test_exec_keeps_sandbox(self, anception_world, enrolled_ctx):
        child_pid = enrolled_ctx.libc.fork()
        child = anception_world.kernel.pids.require(child_pid)
        anception_world.kernel.syscall(child, "execve", "/system/bin/sh", ())
        assert child.redirection_entry == 1
        assert child.proxy is not None


class TestMmapSplit:
    def test_anonymous_mmap_content_stays_on_host(self, anception_world,
                                                  enrolled_ctx):
        base = enrolled_ctx.libc.mmap(
            PAGE_SIZE, PROT_READ | PROT_WRITE, MAP_ANONYMOUS
        )
        enrolled_ctx.task.address_space.write(base, b"host-only-bytes")
        proxy_space = enrolled_ctx.task.proxy.address_space
        vpn = base // PAGE_SIZE
        assert proxy_space.is_mapped(base)
        guest_view = proxy_space.read(
            base, 15, window=anception_world.cvm.kernel.frame_window,
            need_prot=0,
        )
        assert guest_view == b"\x00" * 15  # shape mirrored, content absent

    def test_null_page_mapping_mirrors_shape_only(self, anception_world,
                                                  enrolled_ctx):
        from repro.kernel.kernel import SHELLCODE_MAGIC

        enrolled_ctx.libc.mmap(
            PAGE_SIZE, PROT_READ | PROT_WRITE | PROT_EXEC,
            MAP_FIXED | MAP_ANONYMOUS, addr=0,
        )
        enrolled_ctx.task.address_space.write(
            0, SHELLCODE_MAGIC + b"payload", need_prot=0
        )
        proxy_space = enrolled_ctx.task.proxy.address_space
        assert proxy_space.is_mapped(0)
        guest_zero = proxy_space.read(
            0, 16, window=anception_world.cvm.kernel.frame_window,
            need_prot=0,
        )
        assert not guest_zero.startswith(SHELLCODE_MAGIC)

    def test_file_backed_mmap_of_cvm_file(self, anception_world,
                                          enrolled_ctx):
        path = enrolled_ctx.data_path("mapped.bin")
        enrolled_ctx.libc.write_file(path, b"M" * 100)
        fd = enrolled_ctx.libc.open(path, vfs.O_RDONLY)
        base = enrolled_ctx.libc.mmap(
            PAGE_SIZE, PROT_READ, 0, fd=fd, offset=0
        )
        content = enrolled_ctx.task.address_space.read(base, 100,
                                                       need_prot=0)
        assert content == b"M" * 100

    def test_msync_pushes_content_to_guest(self, anception_world,
                                           enrolled_ctx):
        base = enrolled_ctx.libc.mmap(
            PAGE_SIZE, PROT_READ | PROT_WRITE, MAP_ANONYMOUS
        )
        enrolled_ctx.task.address_space.write(base, b"sync-me")
        result = enrolled_ctx.libc.syscall("msync", base, 7)
        assert result == 0


class TestUidChangeKill:
    def test_setuid_change_kills_app(self, anception_world, enrolled_ctx):
        task = enrolled_ctx.task
        # Root-capable change is needed to move UID; model a service
        # exploit granting it by swapping credentials to root first.
        task.credentials = Credentials(0)
        with pytest.raises(ProcessKilled):
            enrolled_ctx.libc.setuid(4242)
        assert not task.is_alive()
        assert task.pid in anception_world.anception.killed_apps

    def test_setuid_to_same_uid_is_fine(self, enrolled_ctx):
        uid = enrolled_ctx.task.credentials.uid
        assert enrolled_ctx.libc.setuid(uid) == 0
        assert enrolled_ctx.task.is_alive()

    def test_native_setuid_not_killed(self, native_ctx):
        uid = native_ctx.task.credentials.uid
        assert native_ctx.libc.setuid(uid) == 0
        assert native_ctx.task.is_alive()


class TestExecCacheLifecycle:
    def test_stage_closes_its_open_file(self, anception_world):
        cache = anception_world.anception.exec_cache
        staged = []
        real_open = cache.kernel.vfs.open

        def spying_open(*args, **kwargs):
            open_file = real_open(*args, **kwargs)
            staged.append(open_file)
            return open_file

        cache.kernel.vfs.open = spying_open
        try:
            path = cache.stage("/data/app/gen.bin", b"\x7fELFgen")
        finally:
            cache.kernel.vfs.open = real_open
        assert len(staged) == 1
        # the regression: stage used to leak the handle (refcount stuck
        # at 1), pinning every staged executable's description forever
        assert staged[0].refcount == 0
        assert path in [f"/data/anception-exec-cache/{n}"
                        for n in cache.entries()]

    def test_stage_closes_even_when_the_write_raises(self, anception_world):
        cache = anception_world.anception.exec_cache
        staged = []
        real_open = cache.kernel.vfs.open

        def spying_open(*args, **kwargs):
            open_file = real_open(*args, **kwargs)
            staged.append(open_file)
            return open_file

        cache.kernel.vfs.open = spying_open
        try:
            with pytest.raises(TypeError):
                cache.stage("/data/app/bad.bin", object())
        finally:
            cache.kernel.vfs.open = real_open
        assert staged[0].refcount == 0
