"""Section VII: transparent per-app encrypted storage and Iago detection."""

import pytest

from repro.core.crypto_fs import TransparentCryptoFS, _keystream_xor
from repro.errors import SecurityViolation
from repro.kernel import vfs
from repro.kernel.process import Credentials


ROOT = Credentials(0)


@pytest.fixture
def crypto(anception_world):
    return TransparentCryptoFS(anception_world.anception)


@pytest.fixture
def protected_ctx(anception_world, crypto, enrolled_ctx):
    crypto.enable_for(enrolled_ctx.task)
    return enrolled_ctx


class TestKeystream:
    def test_roundtrip(self):
        key = b"k" * 32
        data = b"the quick brown fox"
        assert _keystream_xor(key, _keystream_xor(key, data, 7), 7) == data

    def test_offset_matters(self):
        key = b"k" * 32
        a = _keystream_xor(key, b"same", 0)
        b = _keystream_xor(key, b"same", 100)
        assert a != b

    def test_key_matters(self):
        a = _keystream_xor(b"a" * 32, b"same", 0)
        b = _keystream_xor(b"b" * 32, b"same", 0)
        assert a != b

    def test_crosses_block_boundaries(self):
        key = b"k" * 32
        data = bytes(range(256))
        assert _keystream_xor(key, _keystream_xor(key, data, 30), 30) == data


class TestTransparentEncryption:
    def test_app_sees_plaintext(self, protected_ctx):
        path = protected_ctx.data_path("vault.bin")
        protected_ctx.libc.write_file(path, b"plaintext-secret")
        assert protected_ctx.libc.read_file(path) == b"plaintext-secret"

    def test_cvm_sees_only_ciphertext(self, anception_world, protected_ctx):
        path = protected_ctx.data_path("vault.bin")
        protected_ctx.libc.write_file(path, b"plaintext-secret")
        cvm_inode = anception_world.cvm.kernel.vfs.resolve(path, ROOT)
        stored = bytes(cvm_inode.data)
        assert stored != b"plaintext-secret"
        assert b"secret" not in stored

    def test_partial_reads_decrypt_correctly(self, protected_ctx):
        path = protected_ctx.data_path("chunks.bin")
        protected_ctx.libc.write_file(path, b"0123456789ABCDEF")
        fd = protected_ctx.libc.open(path, vfs.O_RDONLY)
        assert protected_ctx.libc.read(fd, 4) == b"0123"
        assert protected_ctx.libc.read(fd, 4) == b"4567"
        protected_ctx.libc.close(fd)

    def test_pread_pwrite_at_offsets(self, protected_ctx):
        path = protected_ctx.data_path("rand.bin")
        fd = protected_ctx.libc.open(path, vfs.O_RDWR | vfs.O_CREAT)
        protected_ctx.libc.pwrite(fd, b"AAAABBBB", 0)
        assert protected_ctx.libc.pread(fd, 4, 4) == b"BBBB"
        protected_ctx.libc.close(fd)

    def test_unprotected_apps_unaffected(self, anception_world, crypto):
        from tests.conftest import ScratchApp

        class OtherApp(ScratchApp):
            from repro.android.app import AppManifest

            manifest = ScratchApp.manifest.__class__(
                "com.other.plain"
            )

        running = anception_world.install_and_launch(OtherApp())
        running.run()
        ctx = running.ctx
        ctx.libc.write_file(ctx.data_path("open.txt"), b"not-encrypted")
        inode = anception_world.cvm.kernel.vfs.resolve(
            ctx.data_path("open.txt"), ROOT
        )
        assert bytes(inode.data) == b"not-encrypted"

    def test_keys_live_on_host_side_only(self, anception_world, crypto,
                                         protected_ctx):
        """No CVM structure ever holds the key bytes."""
        key = crypto._keys[protected_ctx.task.pid]
        path = protected_ctx.data_path("k.bin")
        protected_ctx.libc.write_file(path, b"data")
        for inode_path in (path,):
            data = bytes(
                anception_world.cvm.kernel.vfs.resolve(inode_path, ROOT).data
            )
            assert key not in data


class TestIagoDetection:
    def test_tampered_read_detected(self, anception_world, crypto,
                                    protected_ctx):
        anception_world.anception.iago_verify = True
        path = protected_ctx.data_path("ledger.bin")
        protected_ctx.libc.write_file(path, b"balance=100")

        # A compromised CVM flips bytes in the stored ciphertext.
        inode = anception_world.cvm.kernel.vfs.resolve(path, ROOT)
        inode.data = bytearray(b"\xFF" * len(inode.data))

        fd = protected_ctx.libc.open(path, vfs.O_RDONLY)
        with pytest.raises(SecurityViolation) as exc:
            protected_ctx.libc.pread(fd, 11, 0)
        assert "Iago" in str(exc.value)

    def test_untampered_read_passes_verification(self, anception_world,
                                                 crypto, protected_ctx):
        anception_world.anception.iago_verify = True
        path = protected_ctx.data_path("ok.bin")
        protected_ctx.libc.write_file(path, b"balance=100")
        fd = protected_ctx.libc.open(path, vfs.O_RDONLY)
        assert protected_ctx.libc.pread(fd, 11, 0) == b"balance=100"
