"""Marshaling sizes and fd translation."""

import pytest

from repro.android.binder import Transaction
from repro.core.marshal import (
    FdTranslationTable,
    RemoteFdStub,
    encoded_size,
    marshal_call,
    result_size,
)
from repro.errors import SimulationError


class TestEncodedSize:
    def test_primitives(self):
        assert encoded_size(None) == 1
        assert encoded_size(True) == 1
        assert encoded_size(42) == 8
        assert encoded_size(3.14) == 8

    def test_bytes_and_strings_by_length(self):
        assert encoded_size(b"abcd") == 4
        assert encoded_size("hello") == 5

    def test_containers_sum_members(self):
        assert encoded_size([1, 2]) == 20  # 2*8 + 4
        assert encoded_size({"k": b"vv"}) == 1 + 2 + 4

    def test_transaction_uses_payload_size(self):
        txn = Transaction("svc", "m", {"blob": "x" * 100})
        assert encoded_size(txn) == txn.payload_size + 16

    def test_arbitrary_object_falls_back_to_repr(self):
        class Thing:
            def __repr__(self):
                return "Thing()"

        assert encoded_size(Thing()) == len("Thing()")


class TestMarshalCall:
    def test_size_includes_name_and_args(self):
        wire, size = marshal_call("write", (3, b"data"), {})
        assert size == len("write") + 8 + 4
        assert len(wire) == size

    def test_payload_bytes_present_in_wire(self):
        wire, _ = marshal_call("write", (3, b"MARKER-BYTES"), {})
        assert b"MARKER-BYTES" in wire

    def test_result_size(self):
        assert result_size(b"x" * 4096) == 4096
        assert result_size(0) == 8
        assert result_size(None) == 1


class TestFdTranslation:
    def test_bind_and_translate(self):
        table = FdTranslationTable()
        table.bind(5, 3)
        assert table.to_proxy(5) == 3
        assert table.is_remote(5)
        assert 5 in table

    def test_double_bind_rejected(self):
        table = FdTranslationTable()
        table.bind(5, 3)
        with pytest.raises(SimulationError):
            table.bind(5, 4)

    def test_unbind(self):
        table = FdTranslationTable()
        table.bind(5, 3)
        assert table.unbind(5) == 3
        assert not table.is_remote(5)

    def test_translate_unknown_fd_errors(self):
        with pytest.raises(SimulationError):
            FdTranslationTable().to_proxy(9)

    def test_translate_args_rewrites_leading_fd(self):
        table = FdTranslationTable()
        table.bind(7, 3)
        assert table.translate_args("read", (7, 100)) == (3, 100)

    def test_translate_args_leaves_local_fd(self):
        table = FdTranslationTable()
        table.bind(7, 3)
        assert table.translate_args("read", (4, 100)) == (4, 100)

    def test_translate_args_sendfile_both_fds(self):
        table = FdTranslationTable()
        table.bind(7, 3)
        table.bind(8, 4)
        assert table.translate_args("sendfile", (7, 8, None, 100)) == (
            3, 4, None, 100,
        )

    def test_translate_args_non_fd_call_untouched(self):
        table = FdTranslationTable()
        table.bind(7, 3)
        assert table.translate_args("mkdir", ("/x", 0o755)) == ("/x", 0o755)

    def test_remote_fds_set(self):
        table = FdTranslationTable()
        table.bind(5, 1)
        table.bind(6, 2)
        assert table.remote_fds() == {5, 6}


class TestRemoteFdStub:
    def test_dup_returns_self(self):
        stub = RemoteFdStub(3, "f")
        assert stub.dup() is stub

    def test_close_is_inert(self):
        assert RemoteFdStub(3).close() is None


class TestFdFirstSweep:
    """Every fd-first call the proxy can be handed must have its leading
    host fd rewritten — a call missing from the set reaches the CVM with
    a dangling host number and hits the wrong (or no) file."""

    @pytest.mark.parametrize("name,rest", [
        ("ftruncate", (4096,)),
        ("ftruncate64", (4096,)),
        ("fchmod", (0o640,)),
        ("fchown", (1000, 1000)),
        ("fchown32", (1000, 1000)),
        ("fdatasync", ()),
        ("fallocate", (0, 0, 4096)),
        ("flock", (2,)),
        ("getdents", ()),
        ("getdents64", ()),
        ("_llseek", (0, 0, 0)),
        ("fstat64", ()),
        ("pread64", (100, 0)),
        ("pwrite64", (b"x", 0)),
    ])
    def test_translate_args_rewrites_the_new_fd_first_calls(self, name,
                                                            rest):
        table = FdTranslationTable()
        table.bind(7, 3)
        assert table.translate_args(name, (7,) + rest) == (3,) + rest

    def test_translate_args_still_skips_path_first_calls(self):
        table = FdTranslationTable()
        table.bind(7, 3)
        for name in ("truncate", "chmod", "chown", "unlink", "rename"):
            args = ("/data/x", 7)
            assert table.translate_args(name, args) == args
