"""The delegation rings: descriptors, CRC framing, depth, backpressure."""

import pytest

from repro.core.channel import AnceptionChannel
from repro.core.ring import (
    DESCRIPTOR_SLOT_BYTES,
    RING_HEADER_BYTES,
    DelegationRing,
    default_ring_depth,
)
from repro.errors import (
    ChannelCapacityError,
    ChannelError,
    ChannelIntegrityError,
    RingFull,
)
from repro.faults.engine import FaultEngine
from repro.hypervisor import LguestHypervisor
from repro.kernel.kernel import Machine
from repro.perf.costs import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine(total_mb=256)


@pytest.fixture
def channel(machine):
    hypervisor = LguestHypervisor(machine, guest_mb=32)
    hypervisor.launch_guest()
    return AnceptionChannel(hypervisor, machine.costs, num_pages=4)


class TestDepthDerivation:
    def test_default_depth_scales_with_pages(self):
        assert default_ring_depth(8) == 8 * PAGE_SIZE // DESCRIPTOR_SLOT_BYTES
        assert default_ring_depth(8) == 64
        assert default_ring_depth(4) == 32

    def test_default_depth_floor(self):
        assert default_ring_depth(0) == 2

    def test_channel_builds_rings_at_derived_depth(self, channel):
        assert channel.submit_ring.depth == 32
        assert channel.complete_ring.depth == 32
        assert channel.ring_depth == 32

    def test_explicit_ring_depth_knob(self, machine):
        hypervisor = LguestHypervisor(machine, guest_mb=32)
        hypervisor.launch_guest()
        shallow = AnceptionChannel(hypervisor, machine.costs, num_pages=4,
                                   ring_depth=2)
        assert shallow.submit_ring.depth == 2
        assert shallow.complete_ring.depth == 2

    def test_bad_ring_names_and_depths_rejected(self, channel):
        with pytest.raises(ChannelError):
            DelegationRing("sideways", channel, 4)
        with pytest.raises(ChannelError):
            DelegationRing("submit", channel, 0)


class TestPushPop:
    def test_round_trip_preserves_payload(self, channel):
        seq = channel.submit_ring.push("write", b"payload-bytes")
        descriptor = channel.submit_ring.pop()
        assert descriptor.seq == seq
        assert descriptor.call == "write"
        assert descriptor.payload == b"payload-bytes"

    def test_sequence_numbers_are_monotonic(self, channel):
        seqs = [channel.submit_ring.push("write", b"x") for _ in range(5)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_pop_empty_returns_none(self, channel):
        assert channel.submit_ring.pop() is None

    def test_payload_crosses_the_shared_pages(self, channel):
        channel.submit_ring.push("write", b"RING-BYTES")
        assert channel.shared.read(10, from_guest=True) == b"RING-BYTES"

    def test_completion_ring_uses_caller_seq(self, channel):
        channel.complete_ring.push("write", b"\x00" * 8, seq=41)
        descriptor = channel.complete_ring.pop()
        assert descriptor.seq == 41

    def test_non_bytes_payload_rejected(self, channel):
        with pytest.raises(ChannelError):
            channel.submit_ring.push("write", "not-bytes")

    def test_push_charges_the_channel_transfer(self, channel, machine):
        before = channel.bytes_to_guest
        channel.submit_ring.push("write", b"d" * 600)
        assert channel.bytes_to_guest - before == 600


class TestCapacityAndBackpressure:
    def test_oversized_descriptor_raises_typed_error(self, channel):
        too_big = b"x" * (channel.capacity - RING_HEADER_BYTES + 1)
        with pytest.raises(ChannelCapacityError) as exc:
            channel.submit_ring.push("write", too_big)
        assert exc.value.nbytes == len(too_big)
        assert exc.value.capacity == channel.capacity
        assert str(channel.capacity) in str(exc.value)

    def test_largest_fitting_descriptor_accepted(self, channel):
        just_fits = b"x" * (channel.capacity - RING_HEADER_BYTES)
        assert channel.submit_ring.push("write", just_fits) > 0

    def test_full_ring_raises_ring_full(self, machine):
        hypervisor = LguestHypervisor(machine, guest_mb=32)
        hypervisor.launch_guest()
        tight = AnceptionChannel(hypervisor, machine.costs, num_pages=4,
                                 ring_depth=3)
        for _ in range(3):
            tight.submit_ring.push("write", b"w")
        with pytest.raises(RingFull) as exc:
            tight.submit_ring.push("write", b"w")
        assert exc.value.depth == 3
        assert tight.submit_ring.free_slots() == 0

    def test_pop_frees_a_slot(self, machine):
        hypervisor = LguestHypervisor(machine, guest_mb=32)
        hypervisor.launch_guest()
        tight = AnceptionChannel(hypervisor, machine.costs, num_pages=4,
                                 ring_depth=2)
        tight.submit_ring.push("write", b"a")
        tight.submit_ring.push("write", b"b")
        tight.submit_ring.pop()
        assert tight.submit_ring.free_slots() == 1
        tight.submit_ring.push("write", b"c")


class TestFaultSites:
    def test_ring_corrupt_surfaces_as_integrity_error(self, channel,
                                                      machine):
        engine = FaultEngine("ring.corrupt:nth=1").arm(machine.clock)
        try:
            channel.submit_ring.push("write", b"precious-payload")
            with pytest.raises(ChannelIntegrityError):
                channel.submit_ring.pop()
        finally:
            engine.disarm()
        assert channel.integrity_failures == 1

    def test_ring_reorder_delivers_second_first(self, channel, machine):
        first = channel.submit_ring.push("write", b"first")
        second = channel.submit_ring.push("write", b"second")
        engine = FaultEngine("ring.reorder:nth=1").arm(machine.clock)
        try:
            assert channel.submit_ring.pop().seq == second
            assert channel.submit_ring.pop().seq == first
        finally:
            engine.disarm()
        assert channel.submit_ring.out_of_order == 1

    def test_ring_full_fault_stalls_a_genuinely_full_push(self, machine):
        hypervisor = LguestHypervisor(machine, guest_mb=32)
        hypervisor.launch_guest()
        tight = AnceptionChannel(hypervisor, machine.costs, num_pages=4,
                                 ring_depth=2)
        tight.submit_ring.push("write", b"a")
        tight.submit_ring.push("write", b"b")
        engine = FaultEngine("ring.full:nth=1:delay_us=500").arm(
            machine.clock
        )
        try:
            before = machine.clock.now_ns
            with pytest.raises(RingFull):
                tight.submit_ring.push("write", b"c")
            stalled = machine.clock.now_ns - before
        finally:
            engine.disarm()
        assert stalled >= 500_000
        assert tight.submit_ring.stalls == 1

    def test_ring_full_fault_never_bills_a_non_full_ring(self, channel,
                                                         machine):
        # Regression: the stall used to be charged before the fullness
        # check, so a push onto a ring with free slots paid the delay.
        engine = FaultEngine("ring.full:nth=1:delay_us=500").arm(
            machine.clock
        )
        try:
            before = machine.clock.now_ns
            channel.submit_ring.push("write", b"w")
            stalled = machine.clock.now_ns - before
        finally:
            engine.disarm()
        assert stalled < 500_000
        assert channel.submit_ring.stalls == 0


class TestResetAndStats:
    def test_reset_drops_queued_descriptors(self, channel):
        channel.submit_ring.push("write", b"a")
        channel.submit_ring.push("write", b"b")
        assert channel.submit_ring.reset() == 2
        assert channel.submit_ring.pop() is None

    def test_reset_rings_clears_both_directions(self, channel):
        channel.submit_ring.push("write", b"a")
        channel.complete_ring.push("write", b"\x00", seq=1)
        channel.reset_rings()
        assert len(channel.submit_ring) == 0
        assert len(channel.complete_ring) == 0

    def test_stats_track_traffic(self, channel):
        channel.submit_ring.push("write", b"a")
        channel.submit_ring.push("write", b"b")
        channel.submit_ring.pop()
        stats = channel.submit_ring.stats()
        assert stats["pushed"] == 2
        assert stats["popped"] == 1
        assert stats["queued"] == 1
        assert stats["max_depth_seen"] == 2

    def test_channel_stats_include_rings(self, channel):
        stats = channel.stats()
        assert stats["submit_ring"]["depth"] == 32
        assert stats["complete_ring"]["depth"] == 32
        assert stats["coalesced_doorbells"] == 0
        assert stats["descriptors_retired"] == 0
