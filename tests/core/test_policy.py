"""The redirection policy's static and dynamic decisions."""

import pytest

from repro.android.binder import BINDER_WRITE_READ, IOC_WAIT_INPUT_EVT, Transaction
from repro.core.policy import Decision, RedirectionPolicy
from repro.kernel.kernel import Machine
from repro.kernel.process import Credentials


UI_NAMES = {"window", "input", "activity", "surfaceflinger"}


@pytest.fixture
def policy():
    return RedirectionPolicy(UI_NAMES)


@pytest.fixture
def task():
    kernel = Machine(total_mb=64).kernel
    t = kernel.spawn_task("com.app", Credentials(10001))
    t.cwd = "/data/data/com.app"
    return t


class TestStaticClasses:
    def test_blocked(self, policy, task):
        assert policy.decide(task, "init_module", (), set()) is Decision.BLOCK
        assert policy.decide(task, "ptrace", (), set()) is Decision.BLOCK

    def test_host_process_control(self, policy, task):
        for name in ("getpid", "kill", "brk", "setuid", "futex"):
            assert policy.decide(task, name, (), set()) is Decision.HOST

    def test_split(self, policy, task):
        for name in ("fork", "execve", "mmap2", "ioctl", "close", "dup"):
            assert policy.decide(task, name, (), set()) is Decision.SPLIT

    def test_plain_redirect(self, policy, task):
        for name in ("socket", "mkdir", "pipe", "sendfile"):
            assert policy.decide(task, name, (), set()) is Decision.REDIRECT


class TestOpenRouting:
    def test_system_paths_host(self, policy, task):
        decision = policy.decide(task, "open", ("/system/lib/libc.so", 0),
                                 set())
        assert decision is Decision.HOST

    def test_app_code_host(self, policy, task):
        decision = policy.decide(task, "open", ("/data/app/com.app.apk", 0),
                                 set())
        assert decision is Decision.HOST

    def test_proc_self_exe_host(self, policy, task):
        decision = policy.decide(task, "open", ("/proc/self/exe", 0), set())
        assert decision is Decision.HOST

    def test_proc_pid_exe_host(self, policy, task):
        decision = policy.decide(
            task, "open", (f"/proc/{task.pid}/exe", 0), set()
        )
        assert decision is Decision.HOST

    def test_binder_device_host(self, policy, task):
        assert policy.decide(task, "open", ("/dev/binder", 2),
                             set()) is Decision.HOST

    def test_data_dir_redirected(self, policy, task):
        decision = policy.decide(
            task, "open", ("/data/data/com.app/notes.txt", 0x41), set()
        )
        assert decision is Decision.REDIRECT

    def test_proc_net_redirected(self, policy, task):
        assert policy.decide(task, "open", ("/proc/net/netlink", 0),
                             set()) is Decision.REDIRECT

    def test_framebuffer_redirected(self, policy, task):
        assert policy.decide(task, "open", ("/dev/graphics/fb0", 2),
                             set()) is Decision.REDIRECT

    def test_relative_path_resolved_against_cwd(self, policy, task):
        assert policy.decide(task, "open", ("notes.txt", 0),
                             set()) is Decision.REDIRECT

    def test_stat_routes_like_open(self, policy, task):
        assert policy.decide(task, "stat", ("/system/bin/sh",),
                             set()) is Decision.HOST
        assert policy.decide(task, "stat", ("/data/data/com.app/f",),
                             set()) is Decision.REDIRECT

    def test_getdents_routes_by_path(self, policy, task):
        assert policy.decide(task, "getdents", ("/proc",),
                             set()) is Decision.REDIRECT


class TestFdLocality:
    def test_remote_fd_redirected(self, policy, task):
        assert policy.decide(task, "read", (7, 100),
                             {7}) is Decision.REDIRECT

    def test_local_fd_host(self, policy, task):
        assert policy.decide(task, "read", (3, 100), {7}) is Decision.HOST

    def test_write_follows_fd(self, policy, task):
        assert policy.decide(task, "write", (9, b"x"),
                             {9}) is Decision.REDIRECT
        assert policy.decide(task, "write", (2, b"x"),
                             {9}) is Decision.HOST


class TestIoctlInspection:
    def test_wait_input_is_ui(self, policy):
        assert policy.ioctl_is_ui(IOC_WAIT_INPUT_EVT, None)

    def test_ui_service_transaction_is_ui(self, policy):
        txn = Transaction("window", "create_window")
        assert policy.ioctl_is_ui(BINDER_WRITE_READ, txn)

    def test_delegated_service_transaction_not_ui(self, policy):
        txn = Transaction("location", "get_fix")
        assert not policy.ioctl_is_ui(BINDER_WRITE_READ, txn)

    def test_app_to_app_binder_recognised(self, policy):
        assert policy.binder_target_is_app(Transaction("app:com.x", "ping"))
        assert not policy.binder_target_is_app(Transaction("vold", "mount"))

    def test_code_path_predicate(self, policy, task):
        assert policy.is_code_path(task, "/system/anything")
        assert policy.is_code_path(task, "/data/app/x.apk")
        assert not policy.is_code_path(task, "/data/data/com.app/f")
