"""The CVM pool: placement, routed transport, lane reboot, rebalance.

The tentpole guarantees under test:

* placement is deterministic and seed-stable — the same apps land on
  the same lanes on every run;
* every piece of lane-held transport state is re-armed through the one
  ``_bind_lane`` choke point, so a lane-scoped reboot leaves no stale
  references behind (the satellite-1 regression);
* a lane crash is *lane-scoped*: sibling lanes' apps keep running,
  differentially identical to a no-fault run;
* rebalancing moves an idle app's proxy, fd table, and ledger state to
  another lane without changing a byte of what the app observes;
* aggregated ``stats()`` keeps the classic single-CVM shape at
  ``cvms=1`` and sums across lanes otherwise.
"""

from __future__ import annotations

import pytest

from repro.android.app import AppManifest
from repro.core.pool import CVMPool, Placement
from repro.clock import SimClock
from repro.errors import SimulationError, SyscallError
from repro.faults.engine import FaultEngine
from repro.kernel import vfs
from repro.kernel.net import AF_INET, SOCK_STREAM
from repro.workloads.fleet import FleetApp
from repro.world import AnceptionWorld


def _launch_fleet(world, count):
    members = []
    for index in range(count):
        running = world.install_and_launch(FleetApp(index))
        running.run()
        members.append(running)
    return members


class _FakeCreds:
    def __init__(self, uid):
        self.uid = uid


class _FakeTask:
    def __init__(self, pid, uid):
        self.pid = pid
        self.credentials = _FakeCreds(uid)
        self.name = f"task-{pid}"


class TestPlacement:
    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError, match="unknown placement"):
            Placement("round-robin")

    def test_parse_coerces(self):
        assert Placement.parse(None).policy == "by-uid"
        assert Placement.parse("by-load").policy == "by-load"
        existing = Placement("by-trust-class", seed=3)
        assert Placement.parse(existing) is existing

    def test_by_uid_is_deterministic(self):
        tasks = [_FakeTask(pid, 10000 + pid) for pid in range(20)]
        first = CVMPool(SimClock(), cvms=4)
        second = CVMPool(SimClock(), cvms=4)
        for task in tasks:
            assert first.assign(task).cvm_id == second.assign(task).cvm_id

    def test_by_uid_seed_changes_the_map(self):
        tasks = [_FakeTask(pid, 10000 + pid) for pid in range(32)]
        base = CVMPool(SimClock(), cvms=4, seed=0)
        salted = CVMPool(SimClock(), cvms=4, seed=1)
        base_map = [base.assign(task).cvm_id for task in tasks]
        salted_map = [salted.assign(task).cvm_id for task in tasks]
        assert base_map != salted_map

    def test_by_trust_class_pins_system_uids_to_lane_zero(self):
        pool = CVMPool(SimClock(), cvms=4, placement="by-trust-class")
        system = _FakeTask(1, 1000)  # appId < 10000: a system uid
        assert pool.assign(system).cvm_id == 0

    def test_by_trust_class_colocates_a_band(self):
        pool = CVMPool(SimClock(), cvms=4, placement="by-trust-class")
        a = pool.assign(_FakeTask(1, 10230))
        b = pool.assign(_FakeTask(2, 10231))  # same appId // 1000 band
        assert a is b

    def test_by_load_balances_evenly(self):
        pool = CVMPool(SimClock(), cvms=4, placement="by-load")
        for pid in range(8):
            pool.assign(_FakeTask(pid, 10000 + pid))
        assert pool.load_by_lane() == [2, 2, 2, 2]

    def test_single_lane_short_circuits(self):
        pool = CVMPool(SimClock(), cvms=1)
        assert pool.assign(_FakeTask(1, 10001)).cvm_id == 0

    def test_unassigned_pid_resolves_to_default_lane(self):
        pool = CVMPool(SimClock(), cvms=4)
        assert pool.lane_for(_FakeTask(99, 10099)) is pool.default_lane

    def test_pool_needs_at_least_one_cvm(self):
        with pytest.raises(SimulationError, match=">= 1 CVM"):
            CVMPool(SimClock(), cvms=0)


class TestRoutedTransport:
    def test_apps_spread_across_lanes(self):
        world = AnceptionWorld(cvms=4)
        members = _launch_fleet(world, 8)
        pool = world.anception.pool
        used = {pool.lane_for(m.task).cvm_id for m in members}
        assert len(used) > 1
        assert pool.assignments == 8

    def test_each_app_delegates_through_its_own_lane(self):
        world = AnceptionWorld(cvms=4)
        members = _launch_fleet(world, 6)
        pool = world.anception.pool
        for member in members:
            lane = pool.lane_for(member.task)
            before = lane.channel.stats()["transfers"]
            member.ctx.libc.write_file(
                member.ctx.data_path("probe.bin"), b"probe"
            )
            assert lane.channel.stats()["transfers"] > before

    def test_single_cvm_keeps_classic_back_compat_views(self):
        world = AnceptionWorld()
        anception = world.anception
        lane = anception.pool.default_lane
        assert anception.cvm is lane.cvm
        assert anception.channel is lane.channel
        assert anception.proxies is lane.proxies
        assert lane.cvm.lane == "cvm"
        assert lane.cvm.kernel.label == "cvm"

    def test_placement_flap_diverts_one_assignment(self):
        world = AnceptionWorld(cvms=4)
        engine = FaultEngine("pool.placement-flap:nth=1", seed=0)
        engine.arm(world.clock)
        try:
            _launch_fleet(world, 4)
        finally:
            engine.disarm()
        assert world.anception.pool.flaps == 1
        assert engine.fired[0]["site"] == "pool.placement-flap"

    def test_placement_flap_never_consulted_single_lane(self):
        world = AnceptionWorld()
        engine = FaultEngine("pool.placement-flap:p=1.0", seed=0)
        engine.arm(world.clock)
        try:
            _launch_fleet(world, 3)
        finally:
            engine.disarm()
        assert world.anception.pool.flaps == 0
        assert engine.fired == []


class TestLaneReboot:
    def _crash(self, lane):
        try:
            lane.cvm.kernel.panic("induced")
        except Exception:
            pass

    def test_reboot_rebinds_all_lane_state(self):
        """Satellite 1: no stale lane-held reference survives a reboot."""
        world = AnceptionWorld(cvms=2, read_cache=True,
                               async_delegation=True, binder_ring=True)
        members = _launch_fleet(world, 4)
        pool = world.anception.pool
        lane = pool.lane_for(members[0].task)
        # Populate every piece of lane-held state.
        for member in members:
            if pool.lane_for(member.task) is lane:
                member.ctx.libc.write_file(
                    member.ctx.data_path("pre.bin"), b"pre"
                )
        old_channel, old_proxies = lane.channel, lane.proxies
        old_cache, old_wb = lane.page_cache, lane.write_behind
        old_binder = lane.binder_ring
        lane.cache_paths["/stale"] = 1
        lane.write_behind.errors[(999, 1)] = 5
        lane.binder_ring.errors[(999, "svc")] = 5

        self._crash(lane)
        world.anception.reboot_cvm(lane)

        # Channel and proxies are new objects; windows/caches are the
        # same objects (counters survive) but their state is gone.
        assert lane.channel is not old_channel
        assert lane.proxies is not old_proxies
        assert lane.page_cache is old_cache
        assert lane.write_behind is old_wb
        assert lane.binder_ring is old_binder
        assert lane.cache_paths == {}
        assert lane.inflight == []
        assert lane.write_behind.errors == {}
        assert lane.binder_ring.errors == {}
        assert old_cache.stats()["pages"] == 0

        # Survivors on the rebooted lane keep working end to end.
        for member in members:
            if pool.lane_for(member.task) is lane:
                member.ctx.libc.write_file(
                    member.ctx.data_path("post.bin"), b"post"
                )
                member.ctx.libc.fence()
                assert member.ctx.libc.read_file(
                    member.ctx.data_path("post.bin")
                ) == b"post"

    def test_crash_is_lane_scoped(self):
        world = AnceptionWorld(cvms=4)
        members = _launch_fleet(world, 8)
        pool = world.anception.pool
        victim = pool.lane_for(members[0].task)
        self._crash(victim)
        for member in members:
            payload = f"alive-{member.app.index}".encode()
            path = member.ctx.data_path("alive.bin")
            if pool.lane_for(member.task) is victim:
                with pytest.raises(SyscallError):
                    member.ctx.libc.write_file(path, payload)
            else:
                member.ctx.libc.write_file(path, payload)
                assert member.ctx.libc.read_file(path) == payload

    def test_sibling_lane_stream_identical_to_no_fault(self):
        """Differential pin: a crash on one lane never changes a byte
        of what apps on sibling lanes compute."""
        def run(crash):
            world = AnceptionWorld(cvms=4)
            members = _launch_fleet(world, 8)
            pool = world.anception.pool
            victim = pool.lane_for(members[0].task)
            if crash:
                self._crash(victim)
            outcomes = {}
            for member in members:
                if pool.lane_for(member.task) is victim:
                    continue
                path = member.ctx.data_path("diff.bin")
                payload = f"diff-{member.app.index}".encode() * 8
                member.ctx.libc.write_file(path, payload)
                outcomes[member.app.index] = member.ctx.libc.read_file(path)
            return outcomes

        assert run(crash=True) == run(crash=False)

    def test_reboot_defaults_to_lane_zero(self):
        world = AnceptionWorld()
        running = world.install_and_launch(FleetApp(0))
        running.run()
        lane = world.anception.pool.default_lane
        self._crash(lane)
        world.anception.reboot_cvm()
        running.ctx.libc.write_file(
            running.ctx.data_path("again.bin"), b"again"
        )
        assert lane.cvm.reboot_count == 1


class TestRebalance:
    def _world_with_two_lanes(self):
        world = AnceptionWorld(cvms=2, read_cache=True,
                               async_delegation=True, binder_ring=True)
        members = _launch_fleet(world, 4)
        pool = world.anception.pool
        mover = members[0]
        source = pool.lane_for(mover.task)
        target = next(l for l in pool.lanes if l is not source)
        return world, members, mover, source, target

    def test_rebalance_moves_app_and_preserves_data(self):
        world, _members, mover, source, target = self._world_with_two_lanes()
        ctx = mover.ctx
        path = ctx.data_path("carried.bin")
        fd = ctx.libc.open(path, vfs.O_RDWR | vfs.O_CREAT)
        ctx.libc.write(fd, b"before-move")
        ctx.libc.fence(fd)

        assert world.anception.rebalance(mover.task, target) is True
        pool = world.anception.pool
        assert pool.lane_for(mover.task) is target
        assert pool.rebalances == 1

        # The open fd still works: offset preserved, bytes identical.
        assert ctx.libc.pread(fd, 11, 0) == b"before-move"
        ctx.libc.write(fd, b"+after")
        ctx.libc.fence(fd)
        assert ctx.libc.pread(fd, 17, 0) == b"before-move+after"
        ctx.libc.close(fd)

        # New traffic lands on the target lane.
        before = target.channel.stats()["transfers"]
        ctx.libc.write_file(ctx.data_path("post-move.bin"), b"x")
        assert target.channel.stats()["transfers"] > before

    def test_rebalance_differential_equivalence(self):
        """The moved app's observable stream is byte-identical to a run
        that never moved it."""
        def run(move):
            world, _members, mover, _source, target = \
                self._world_with_two_lanes()
            ctx = mover.ctx
            path = ctx.data_path("obs.bin")
            fd = ctx.libc.open(path, vfs.O_RDWR | vfs.O_CREAT)
            ctx.libc.write(fd, b"phase-one;")
            ctx.libc.fence(fd)
            if move:
                assert world.anception.rebalance(mover.task, target)
            ctx.libc.write(fd, b"phase-two")
            ctx.libc.fence(fd)
            out = ctx.libc.pread(fd, 19, 0)
            ctx.libc.close(fd)
            listing = sorted(ctx.libc.listdir(ctx.data_path("")))
            return out, listing

        assert run(move=True) == run(move=False)

    def test_rebalance_same_lane_is_a_noop(self):
        world, _members, mover, source, _target = \
            self._world_with_two_lanes()
        assert world.anception.rebalance(mover.task, source) is False
        assert world.anception.pool.rebalances == 0

    def test_rebalance_accepts_int_target(self):
        world, _members, mover, _source, target = \
            self._world_with_two_lanes()
        assert world.anception.rebalance(mover.task, target.cvm_id) is True
        assert world.anception.pool.lane_for(mover.task) is target

    def test_rebalance_skips_apps_holding_non_file_fds(self):
        world = AnceptionWorld(cvms=2)
        members = []
        for index in range(4):
            app = FleetApp(index)
            app._manifest = AppManifest(
                f"com.fleet.net{index:03d}", permissions=("INTERNET",)
            )
            running = world.install_and_launch(app)
            running.run()
            members.append(running)
        pool = world.anception.pool
        mover = members[0]
        target = next(
            l for l in pool.lanes if l is not pool.lane_for(mover.task)
        )
        mover.ctx.libc.socket(AF_INET, SOCK_STREAM, 0)
        assert world.anception.rebalance(mover.task, target) is False
        assert pool.lane_for(mover.task) is not target
        assert any(kind == "rebalance-skip"
                   for kind, _ in world.anception.recovery_log)

    def test_rebalance_loss_fault_aborts_the_move(self):
        world, _members, mover, source, target = \
            self._world_with_two_lanes()
        engine = FaultEngine("pool.rebalance-loss:nth=1", seed=0)
        engine.arm(world.clock)
        try:
            assert world.anception.rebalance(mover.task, target) is False
        finally:
            engine.disarm()
        pool = world.anception.pool
        assert pool.lane_for(mover.task) is source
        assert pool.rebalances == 0
        assert any(kind == "rebalance-abort"
                   for kind, _ in world.anception.recovery_log)
        # The app is unharmed and can still do I/O on its source lane.
        mover.ctx.libc.write_file(
            mover.ctx.data_path("still-here.bin"), b"ok"
        )


class TestStatsAggregation:
    def test_single_cvm_keeps_the_classic_shape(self):
        world = AnceptionWorld()
        running = world.install_and_launch(FleetApp(0))
        running.run()
        stats = world.anception.stats()
        assert "pool" not in stats
        assert "per_cvm" not in stats

    def test_multi_cvm_counters_are_fleet_sums(self):
        world = AnceptionWorld(cvms=4, read_cache=True,
                               async_delegation=True, binder_ring=True)
        members = _launch_fleet(world, 8)
        for member in members:
            member.ctx.libc.write_file(
                member.ctx.data_path("agg.bin"), b"agg"
            )
        stats = world.anception.stats()
        per_cvm = stats["per_cvm"]
        assert set(per_cvm) == {"cvm", "cvm1", "cvm2", "cvm3"}
        assert stats["channel"]["transfers"] == sum(
            entry["channel"]["transfers"] for entry in per_cvm.values()
        )
        assert stats["proxies"] == sum(
            entry["proxies"] for entry in per_cvm.values()
        )
        assert sum(stats["pool"]["residents"].values()) == 8
        assert stats["pool"]["assignments"] == 8

    def test_world_repr_reports_the_pool(self):
        world = AnceptionWorld(cvms=4)
        assert "4 CVMs" in repr(world)
        assert "AnceptionWorld(host ui_only + CVM running)" == repr(
            AnceptionWorld()
        )
