"""Write-behind delegation: windows, fences, and the deferred ledger.

These pin the tentpole's contract points: deferral is invisible in an
unfaulted run, a deferred errno surfaces exactly once at the first
fence, later window entries die with ECANCELED, the in-flight depth
bounds staged work, the overlap lane makes the host cheaper than sync,
and a CVM reboot clears every async remnant.
"""

import errno

import pytest

from repro.android.app import App, AppManifest
from repro.clock import SimClock
from repro.core.anception import WRITE_BEHIND_DEPTH
from repro.errors import SyscallError
from repro.faults.engine import FaultEngine
from repro.faults.plan import FaultPlan
from repro.kernel import vfs
from repro.world import AnceptionWorld


class WbApp(App):
    manifest = AppManifest("com.test.writebehind")

    def main(self, ctx):
        return {"ok": True}


TRUNC = vfs.O_RDWR | vfs.O_CREAT | vfs.O_TRUNC


@pytest.fixture
def wb_world():
    return AnceptionWorld(async_delegation=True)


@pytest.fixture
def wb_ctx(wb_world):
    running = wb_world.install_and_launch(WbApp())
    running.run()
    return running.ctx


def _arm(world, plan):
    engine = FaultEngine(FaultPlan.parse(plan), seed=0)
    engine.arm(world.clock)
    return engine


class TestOverlapLane:
    def test_overlap_charges_do_not_move_host_time(self):
        clock = SimClock()
        with clock.overlap("cvm"):
            clock.advance(500, "guest-work")
        assert clock.now_ns == 0
        assert clock.lane_backlog_ns("cvm") == 500

    def test_wait_for_advances_to_watermark_once(self):
        clock = SimClock()
        with clock.overlap("cvm"):
            clock.advance(300)
        assert clock.wait_for("cvm") == 300
        assert clock.now_ns == 300
        assert clock.wait_for("cvm") == 0

    def test_windows_resume_from_watermark(self):
        clock = SimClock()
        with clock.overlap("cvm"):
            clock.advance(100)
        clock.advance(40, "host-work")
        with clock.overlap("cvm"):
            clock.advance(100)
        # Second window starts at the lane watermark (100), not at
        # host time (40): one lane is one serial vCPU.
        assert clock.lane_backlog_ns("cvm") == 200 - 40

    def test_windows_do_not_nest(self):
        clock = SimClock()
        with clock.overlap("cvm"):
            with pytest.raises(ValueError):
                with clock.overlap("cvm"):
                    pass

    def test_wait_inside_window_is_refused(self):
        clock = SimClock()
        with clock.overlap("cvm"):
            with pytest.raises(ValueError):
                clock.wait_for("cvm")


class TestDeferral:
    def test_library_default_is_off(self):
        world = AnceptionWorld()
        assert world.anception.write_behind is None
        assert world.anception.stats()["write_behind"] is None

    def test_deferred_write_returns_optimistic_count(self, wb_world, wb_ctx):
        fd = wb_ctx.libc.open(wb_ctx.data_path("d.bin"), TRUNC)
        assert wb_ctx.libc.write(fd, b"deferred") == 8
        wb = wb_world.anception.write_behind
        assert wb.enqueued == 1
        assert wb.stats()["pending"] == 1
        wb_ctx.libc.close(fd)
        assert wb.stats()["pending"] == 0

    def test_writev_defers_per_iovec(self, wb_world, wb_ctx):
        fd = wb_ctx.libc.open(wb_ctx.data_path("v.bin"), TRUNC)
        assert wb_ctx.libc.writev(fd, (b"aa", b"bbb", b"c")) == 6
        assert wb_world.anception.write_behind.enqueued == 3
        wb_ctx.libc.close(fd)
        assert wb_ctx.libc.read_file(wb_ctx.data_path("v.bin")) == b"aabbbc"

    def test_read_after_write_sees_the_bytes(self, wb_world, wb_ctx):
        fd = wb_ctx.libc.open(wb_ctx.data_path("raw.bin"), TRUNC)
        wb_ctx.libc.write(fd, b"coherent")
        assert wb_ctx.libc.pread(fd, 8, 0) == b"coherent"
        wb_ctx.libc.close(fd)

    def test_payload_snapshot_at_enqueue(self, wb_world, wb_ctx):
        buffer = bytearray(b"original")
        fd = wb_ctx.libc.open(wb_ctx.data_path("snap.bin"), TRUNC)
        wb_ctx.libc.write(fd, buffer)
        buffer[:] = b"mutated!"  # the app reuses its buffer immediately
        wb_ctx.libc.close(fd)
        assert wb_ctx.libc.read_file(
            wb_ctx.data_path("snap.bin")
        ) == b"original"

    def test_window_depth_bounds_staged_work(self, wb_world, wb_ctx):
        wb = wb_world.anception.write_behind
        fd = wb_ctx.libc.open(wb_ctx.data_path("deep.bin"), TRUNC)
        for _ in range(WRITE_BEHIND_DEPTH + 1):
            wb_ctx.libc.write(fd, b"x" * 64)
        assert wb.drains == 1  # the full window drained once
        assert wb.max_depth_seen == WRITE_BEHIND_DEPTH
        assert wb.stats()["pending"] == 1
        wb_ctx.libc.close(fd)

    def test_descriptor_flags_mark_deferred_pushes(self, wb_world, wb_ctx):
        fd = wb_ctx.libc.open(wb_ctx.data_path("flag.bin"), TRUNC)
        wb_ctx.libc.write(fd, b"flagged")
        wb_ctx.libc.fence(fd)
        ring = wb_world.anception.channel.submit_ring
        assert ring.stats()["deferred_pushed"] == 1
        wb_ctx.libc.close(fd)
        assert ring.stats()["deferred_pushed"] == 1  # close is sync

    def test_host_time_per_deferred_call_beats_sync(self, wb_ctx):
        sync_world = AnceptionWorld()
        running = sync_world.install_and_launch(WbApp())
        running.run()
        sync_ctx = running.ctx
        results = {}
        for label, ctx in (("wb", wb_ctx), ("sync", sync_ctx)):
            fd = ctx.libc.open(ctx.data_path("lat.bin"), TRUNC)
            ctx.libc.write(fd, b"w" * 4096)  # absorb first-touch costs
            with ctx.kernel.clock.measure() as span:
                for _ in range(8):
                    ctx.libc.write(fd, b"w" * 4096)
            results[label] = span.elapsed_ns
            ctx.libc.close(fd)
        assert results["wb"] * 3 < results["sync"]


class TestFences:
    def test_fsync_drains_and_settles_the_lane(self, wb_world, wb_ctx):
        clock = wb_world.clock
        fd = wb_ctx.libc.open(wb_ctx.data_path("f.bin"), TRUNC)
        wb_ctx.libc.write(fd, b"y" * 4096)
        lane = wb_world.anception.cvm.lane
        wb_ctx.libc.fsync(fd)
        assert clock.lane_backlog_ns(lane) == 0
        assert wb_world.anception.write_behind.stats()["pending"] == 0
        wb_ctx.libc.close(fd)

    def test_fence_veneer_is_noop_on_sync_worlds(self):
        world = AnceptionWorld()
        running = world.install_and_launch(WbApp())
        running.run()
        assert running.ctx.libc.fence() == 0

    def test_cross_task_fence_keeps_cache_coherent(self, wb_world):
        # Task B must never read stale bytes for a file task A has
        # staged writes against: any redirected call fences ALL windows.
        running_a = wb_world.install_and_launch(WbApp())
        running_a.run()
        ctx_a = running_a.ctx
        fd = ctx_a.libc.open(ctx_a.data_path("shared.bin"), TRUNC)
        ctx_a.libc.write(fd, b"from-a")

        class PeerApp(App):
            manifest = AppManifest("com.test.writebehind.peer")

            def main(self, ctx):
                return {"ok": True}

        running_b = wb_world.install_and_launch(PeerApp())
        running_b.run()
        running_b.ctx.libc.getpid()  # HOST call: no fence required
        assert wb_world.anception.write_behind.stats()["pending"] == 1
        running_b.ctx.libc.stat(running_b.ctx.data_path(""))  # redirected
        assert wb_world.anception.write_behind.stats()["pending"] == 0
        ctx_a.libc.close(fd)


class TestDeferredErrors:
    def test_injected_error_surfaces_once_at_first_fence(
        self, wb_world, wb_ctx
    ):
        engine = _arm(wb_world, "wb.error:nth=1:errno=ENOSPC")
        try:
            fd = wb_ctx.libc.open(wb_ctx.data_path("e.bin"), TRUNC)
            assert wb_ctx.libc.write(fd, b"doomed") == 6  # optimistic
            with pytest.raises(SyscallError) as excinfo:
                wb_ctx.libc.fsync(fd)
            assert excinfo.value.errno == errno.ENOSPC
            # Exactly once: the next fence on the same fd is clean.
            wb_ctx.libc.fsync(fd)
            wb_ctx.libc.close(fd)
        finally:
            engine.disarm()

    def test_later_window_entries_get_ecanceled(self, wb_world, wb_ctx):
        engine = _arm(wb_world, "wb.error:nth=1:errno=EDQUOT")
        try:
            fd_a = wb_ctx.libc.open(wb_ctx.data_path("a.bin"), TRUNC)
            fd_b = wb_ctx.libc.open(wb_ctx.data_path("b.bin"), TRUNC)
            wb_ctx.libc.write(fd_a, b"first")   # fault fires here
            wb_ctx.libc.write(fd_b, b"second")  # same window: cancelled
            with pytest.raises(SyscallError) as first:
                wb_ctx.libc.fsync(fd_a)
            assert first.value.errno == errno.EDQUOT
            with pytest.raises(SyscallError) as second:
                wb_ctx.libc.fsync(fd_b)
            assert second.value.errno == errno.ECANCELED
            wb_ctx.libc.close(fd_a)
            wb_ctx.libc.close(fd_b)
        finally:
            engine.disarm()

    def test_close_surfaces_the_deferred_errno(self, wb_world, wb_ctx):
        engine = _arm(wb_world, "wb.error:nth=1")
        try:
            fd = wb_ctx.libc.open(wb_ctx.data_path("c.bin"), TRUNC)
            wb_ctx.libc.write(fd, b"doomed")
            with pytest.raises(SyscallError) as excinfo:
                wb_ctx.libc.close(fd)
            assert excinfo.value.errno == errno.EIO
            # The descriptor is gone regardless (NFS close semantics).
            with pytest.raises(SyscallError) as stale:
                wb_ctx.libc.fsync(fd)
            assert stale.value.errno == errno.EBADF
        finally:
            engine.disarm()

    def test_read_after_failed_write_raises_before_reading(
        self, wb_world, wb_ctx
    ):
        engine = _arm(wb_world, "wb.error:nth=1:errno=ENOSPC")
        try:
            fd = wb_ctx.libc.open(wb_ctx.data_path("r.bin"), TRUNC)
            wb_ctx.libc.write(fd, b"doomed")
            with pytest.raises(SyscallError) as excinfo:
                wb_ctx.libc.pread(fd, 6, 0)
            assert excinfo.value.errno == errno.ENOSPC
            wb_ctx.libc.close(fd)
        finally:
            engine.disarm()

    def test_reap_loss_without_recovery_ledgers_eio(self, wb_world, wb_ctx):
        wb_world.anception.recovery.enabled = False
        engine = _arm(wb_world, "wb.reap-loss:nth=1")
        try:
            fd = wb_ctx.libc.open(wb_ctx.data_path("lost.bin"), TRUNC)
            wb_ctx.libc.write(fd, b"vanishes")
            with pytest.raises(SyscallError) as excinfo:
                wb_ctx.libc.fsync(fd)
            assert excinfo.value.errno == errno.EIO
        finally:
            engine.disarm()


class TestReboot:
    def test_reboot_clears_windows_and_ledger(self, wb_world, wb_ctx):
        engine = _arm(wb_world, "wb.error:nth=1")
        try:
            fd = wb_ctx.libc.open(wb_ctx.data_path("rb.bin"), TRUNC)
            wb_ctx.libc.write(fd, b"doomed")
            wb_ctx.libc.fence()  # drain: the error is now ledgered
        finally:
            engine.disarm()
        wb = wb_world.anception.write_behind
        assert wb.errors
        wb_world.anception.reboot_cvm()
        assert not wb.errors
        assert wb.stats()["pending"] == 0
