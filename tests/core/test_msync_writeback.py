"""msync write-back of file-backed split mappings (Section III-D)."""

import pytest

from repro.kernel import vfs
from repro.kernel.memory import MAP_ANONYMOUS, PROT_READ, PROT_WRITE
from repro.kernel.process import Credentials
from repro.perf.costs import PAGE_SIZE


ROOT = Credentials(0)


@pytest.fixture
def mapped(anception_world, enrolled_ctx):
    """A file-backed split mapping of a CVM file."""
    path = enrolled_ctx.data_path("mapped.db")
    enrolled_ctx.libc.write_file(path, b"ORIGINAL" + b"\x00" * 100)
    fd = enrolled_ctx.libc.open(path, vfs.O_RDWR)
    base = enrolled_ctx.libc.mmap(PAGE_SIZE, PROT_READ | PROT_WRITE, 0,
                                  fd=fd, offset=0)
    return path, fd, base


class TestWriteBack:
    def test_msync_pushes_modifications_to_cvm_file(self, anception_world,
                                                    enrolled_ctx, mapped):
        path, _fd, base = mapped
        enrolled_ctx.task.address_space.write(base, b"MODIFIED")
        enrolled_ctx.libc.syscall("msync", base, 8)
        inode = anception_world.cvm.kernel.vfs.resolve(path, ROOT)
        assert bytes(inode.data[:8]) == b"MODIFIED"

    def test_without_msync_file_unchanged(self, anception_world,
                                          enrolled_ctx, mapped):
        path, _fd, base = mapped
        enrolled_ctx.task.address_space.write(base, b"MODIFIED")
        inode = anception_world.cvm.kernel.vfs.resolve(path, ROOT)
        assert bytes(inode.data[:8]) == b"ORIGINAL"

    def test_partial_msync_at_offset(self, anception_world, enrolled_ctx,
                                     mapped):
        path, _fd, base = mapped
        enrolled_ctx.task.address_space.write(base + 4, b"XY")
        enrolled_ctx.libc.syscall("msync", base + 4, 2)
        inode = anception_world.cvm.kernel.vfs.resolve(path, ROOT)
        assert bytes(inode.data[:8]) == b"ORIGXYAL"

    def test_anonymous_msync_still_fine(self, enrolled_ctx):
        base = enrolled_ctx.libc.mmap(PAGE_SIZE, PROT_READ | PROT_WRITE,
                                      MAP_ANONYMOUS)
        enrolled_ctx.task.address_space.write(base, b"anon")
        assert enrolled_ctx.libc.syscall("msync", base, 4) == 0

    def test_reread_after_msync_sees_new_content(self, enrolled_ctx,
                                                 mapped):
        path, fd, base = mapped
        enrolled_ctx.task.address_space.write(base, b"MODIFIED")
        enrolled_ctx.libc.syscall("msync", base, 8)
        assert enrolled_ctx.libc.pread(fd, 8, 0) == b"MODIFIED"
