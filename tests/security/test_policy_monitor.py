"""The syscall-interface policy checks (detection of the residual 2/25)."""

import pytest

from repro.errors import SyscallError
from repro.exploits.generic import (
    GETUSER_ARGS,
    HostSyscallExploit,
    TOWELROOT_ARGS,
)
from repro.security.policy_monitor import (
    KERNEL_ADDRESS_FLOOR,
    SyscallPolicyMonitor,
    rule_futex_requeue_to_self,
    rule_kernel_range_pointer,
)


class TestRules:
    def test_requeue_to_self_flagged(self):
        assert rule_futex_requeue_to_self("futex", TOWELROOT_ARGS)

    def test_requeue_to_distinct_addresses_clean(self):
        assert rule_futex_requeue_to_self(
            "futex", ("requeue", 0x1000, 0x2000)
        ) is None

    def test_wait_operation_clean(self):
        assert rule_futex_requeue_to_self(
            "futex", ("wait", 0x1000, 0x1000)
        ) is None

    def test_non_futex_clean(self):
        assert rule_futex_requeue_to_self("read", (3, 100)) is None

    def test_kernel_pointer_flagged(self):
        assert rule_kernel_range_pointer("prctl", GETUSER_ARGS)

    def test_userspace_pointer_clean(self):
        assert rule_kernel_range_pointer("prctl", (15, 0x0800_0000)) is None

    def test_mmap_addresses_exempt(self):
        assert rule_kernel_range_pointer(
            "mmap2", (4096, 3, 0x10, KERNEL_ADDRESS_FLOOR)
        ) is None


class TestMonitor:
    def test_detect_mode_records_without_blocking(self, native_world):
        monitor = SyscallPolicyMonitor().install_everywhere(native_world)
        from repro.kernel.libc import Libc
        from repro.kernel.process import Credentials

        task = native_world.kernel.spawn_task("app", Credentials(10001))
        libc = Libc(native_world.kernel, task)
        with pytest.raises(SyscallError) as exc:
            libc.syscall("futex", *TOWELROOT_ARGS)
        assert "ENOSYS" in str(exc.value)  # no vuln installed: normal path
        assert len(monitor.alerts) == 1
        assert monitor.alerts[0].rule == "futex-requeue-to-self"

    def test_prevent_mode_rejects_with_eperm(self, native_world):
        SyscallPolicyMonitor(mode="prevent").install_everywhere(native_world)
        from repro.kernel.libc import Libc
        from repro.kernel.process import Credentials

        task = native_world.kernel.spawn_task("app", Credentials(10001))
        libc = Libc(native_world.kernel, task)
        with pytest.raises(SyscallError) as exc:
            libc.syscall("prctl", *GETUSER_ARGS)
        assert "EPERM" in str(exc.value)

    def test_benign_traffic_produces_no_alerts(self, native_world):
        from tests.conftest import ScratchApp
        from repro.workloads.apps import run_banking_session

        monitor = SyscallPolicyMonitor().install_everywhere(native_world)
        run_banking_session(native_world)
        native_world.install_and_launch(ScratchApp()).run()
        assert monitor.alerts == []

    def test_alerts_attributed_to_pid(self, native_world):
        from repro.kernel.libc import Libc
        from repro.kernel.process import Credentials

        monitor = SyscallPolicyMonitor().install_everywhere(native_world)
        task = native_world.kernel.spawn_task("m", Credentials(10001))
        libc = Libc(native_world.kernel, task)
        try:
            libc.syscall("futex", *TOWELROOT_ARGS)
        except SyscallError:
            pass
        assert monitor.alerted_pids() == {task.pid}
        assert monitor.alerts_for(task.pid)
        assert not monitor.alerts_for(task.pid + 1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SyscallPolicyMonitor(mode="panic")

    def test_monitor_on_anception_world_covers_both_kernels(
            self, anception_world):
        monitor = SyscallPolicyMonitor().install_everywhere(anception_world)
        assert anception_world.kernel.policy_monitor is monitor
        assert anception_world.cvm.kernel.policy_monitor is monitor


class TestPreventionEndToEnd:
    """'detectable and thus preventable ... on both standard Android and
    Anception' — prevention turns the residual 2 into failures."""

    @pytest.mark.parametrize("syscall_name,cve", [
        ("futex", "CVE-2014-3153"),
        ("prctl", "CVE-2013-6282"),
    ])
    def test_prevention_blocks_on_both_configurations(
            self, both_worlds, syscall_name, cve):
        from repro.exploits.base import ExploitOutcome

        for world in both_worlds.values():
            SyscallPolicyMonitor(mode="prevent").install_everywhere(world)
            exploit = HostSyscallExploit(cve, "residual", syscall_name)
            exploit.prepare_world(world)
            running = world.install_and_launch(exploit)
            report = running.run()
            assert report.outcome() is ExploitOutcome.FAILED
            assert world.kernel.compromised_by is None
