"""E6: the Section V-B vulnerability study reproduces the paper."""

import pytest

from repro.exploits.base import ExploitOutcome
from repro.exploits.corpus import CORPUS
from repro.security.vuln_study import (
    format_study_table,
    run_one,
    run_vulnerability_study,
    summarize,
)


@pytest.fixture(scope="module")
def study():
    return run_vulnerability_study()


class TestHeadlineNumbers:
    def test_native_all_25_root(self, study):
        outcomes = study["summary"]["native"]["outcomes"]
        assert outcomes.get("host-root", 0) == 23
        assert outcomes.get("host-root-detected", 0) == 2

    def test_anception_partition_15_8_2(self, study):
        outcomes = study["summary"]["anception"]["outcomes"]
        assert outcomes.get("failed", 0) == 15
        assert outcomes.get("cvm-root", 0) == 8
        assert outcomes.get("host-root-detected", 0) == 2

    def test_every_row_matches_paper(self, study):
        mismatches = [
            (r.cve, r.configuration, r.outcome.value)
            for r in study["rows"]
            if not r.matches_paper
        ]
        assert mismatches == []

    def test_native_probes_show_full_compromise(self, study):
        summary = study["summary"]["native"]
        assert summary["memory_reads"] == 25
        assert summary["input_sniffs"] == 25
        assert summary["code_tampers"] == 25

    def test_anception_probes_confined_to_detectable_pair(self, study):
        summary = study["summary"]["anception"]
        assert summary["memory_reads"] == 2
        assert summary["input_sniffs"] == 2
        assert summary["code_tampers"] == 2

    def test_cvm_root_exploits_touch_nothing(self, study):
        for row in study["rows"]:
            if (row.configuration == "anception"
                    and row.outcome is ExploitOutcome.CVM_ROOT):
                assert not row.probes["read_memory"]
                assert not row.probes["sniff_input"]
                assert not row.probes["tamper_code"]


class TestMechanics:
    def test_single_entry_run(self):
        entry = next(e for e in CORPUS if e.cve == "CVE-2013-2596")
        row = run_one(entry, "anception")
        assert row.outcome is ExploitOutcome.FAILED
        assert row.matches_paper

    def test_summary_counts_sum_to_total(self, study):
        for config in ("native", "anception"):
            outcomes = study["summary"][config]["outcomes"]
            assert sum(outcomes.values()) == 25

    def test_format_table_renders_all_cves(self, study):
        table = format_study_table(study)
        for entry in CORPUS:
            assert entry.cve in table

    def test_summarize_groups_by_configuration(self, study):
        summary = summarize(study["rows"])
        assert set(summary) == {"native", "anception"}
