"""Section V-B's classical-virtualization comparison."""

import pytest

from repro.exploits.corpus import CORPUS
from repro.exploits.gingerbreak import GingerBreak
from repro.security.vuln_study import run_one
from repro.world import ClassicalVmWorld
from repro.workloads.apps import run_banking_session


class TestClassicalVmWorld:
    def test_everything_lives_in_the_guest(self):
        world = ClassicalVmWorld()
        assert world.kernel.label == "guest"
        assert world.system.has_service("window")
        assert world.system.has_service("vold")

    def test_apps_run_normally(self):
        world = ClassicalVmWorld()
        _victim, result, _bank = run_banking_session(world)
        assert result["status"] == "ok"

    def test_guest_cannot_touch_host_frames(self):
        from repro.errors import HypervisorViolation

        world = ClassicalVmWorld()
        host_frame = world.machine.allocator.allocate()
        with pytest.raises(HypervisorViolation):
            world.machine.physical.read_frame(
                host_frame, world.hypervisor.guest_window
            )


class TestComparison:
    def test_gingerbreak_roots_guest_and_reads_victims(self):
        row = run_one(
            next(e for e in CORPUS if e.cve == "CVE-2011-1823"),
            "classical-vm",
        )
        assert row.outcome.value == "cvm-root"  # guest root, host safe
        # ...but co-resident apps are fully exposed:
        assert row.probes["read_memory"]
        assert row.probes["sniff_input"]
        assert row.probes["tamper_code"]

    def test_anception_same_exploit_reads_nothing(self):
        row = run_one(
            next(e for e in CORPUS if e.cve == "CVE-2011-1823"),
            "anception",
        )
        assert row.outcome.value == "cvm-root"
        assert not row.probes["read_memory"]
        assert not row.probes["sniff_input"]

    def test_host_protected_in_both(self):
        for configuration in ("classical-vm", "anception"):
            row = run_one(
                next(e for e in CORPUS if e.cve == "CVE-2011-1823"),
                configuration,
            )
            assert not row.outcome.value.startswith("host-root")

    def test_the_key_insight(self):
        """'it is important to protect apps from each other with a
        smaller trusted base, not just the OS from the apps' — the same
        guest-confined outcome means total app exposure classically and
        none under Anception."""
        world = ClassicalVmWorld()
        victim, _result, _bank = run_banking_session(world)
        exploit = GingerBreak()
        exploit.prepare_world(world)
        report = world.install_and_launch(exploit).run()
        probes = report.probe_against(victim)
        assert probes["read_memory"]  # classical VM: victim exposed
