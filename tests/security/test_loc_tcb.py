"""E8 + E9: LoC deprivileging accounting and the Anception TCB."""

import pytest

from repro.security.loc_accounting import framework_loc, kernel_loc, loc_report
from repro.security.tcb import anception_runtime, tcb_report, trusted_base_comparison


class TestFrameworkLoC:
    def test_totals_match_paper(self):
        fw = framework_loc()
        assert fw["total"] == 181_260
        assert fw["ui_kept_on_host"] == 72_542
        assert fw["deprivileged"] == 108_718

    def test_deprivileged_fraction(self):
        assert framework_loc()["deprivileged_fraction"] == 60.0

    def test_partition_sums(self):
        fw = framework_loc()
        assert fw["ui_kept_on_host"] + fw["deprivileged"] == fw["total"]


class TestKernelLoC:
    def test_subtree_measurements(self):
        k = kernel_loc()
        assert k["fs_ext4"] == 26_451
        assert k["fs_total"] == 725_466
        assert k["net_ipv4"] == 59_166
        assert k["net_total"] == 515_383

    def test_approximately_1_2_million_deprivileged(self):
        k = kernel_loc()
        assert k["deprivileged"] == 1_240_849
        assert k["deprivileged_millions"] == 1.2


class TestLocReport:
    def test_matches_paper_flag(self):
        assert loc_report()["matches_paper"]


class TestTcb:
    def test_runtime_size_and_marshaling_share(self):
        runtime = anception_runtime()
        assert runtime["total_lines"] == 5_219
        assert runtime["marshaling_lines"] == 2_438
        assert runtime["marshaling_fraction"] == 46.7

    def test_bookkeeping_is_remainder(self):
        runtime = anception_runtime()
        assert (
            runtime["marshaling_lines"] + runtime["bookkeeping_lines"]
            == runtime["total_lines"]
        )

    def test_trusted_base_shrinks(self):
        comparison = trusted_base_comparison()
        assert comparison["anception"]["total"] < comparison["native"]["total"]
        assert comparison["reduction_lines"] > 1_000_000

    def test_deprivileged_components(self):
        comparison = trusted_base_comparison()
        assert comparison["deprivileged_kernel_lines"] == 1_240_849
        assert comparison["deprivileged_service_lines"] == 108_718

    def test_anception_adds_small_layer(self):
        comparison = trusted_base_comparison()
        added = (
            comparison["anception"]["anception_layer"]
            + comparison["anception"]["hypervisor"]
        )
        assert added < 0.01 * comparison["deprivileged_kernel_lines"]

    def test_report_carries_paper_reference(self):
        report = tcb_report()
        assert report["paper"]["marshaling_fraction"] == 46.7
