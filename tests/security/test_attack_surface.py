"""E7: the attack-surface partition, static and dynamic."""

import pytest

from repro.core.policy import Decision
from repro.kernel.syscalls import SyscallClass
from repro.security.attack_surface import (
    attack_surface_report,
    names_in_class,
    verify_dynamic_agreement,
)


class TestStaticReport:
    def test_totals(self):
        report = attack_surface_report()
        assert report["total_syscalls"] == 324
        assert report["counts"]["redirect"] == 229
        assert report["counts"]["host"] == 66
        assert report["counts"]["split"] == 21
        assert report["counts"]["blocked"] == 7

    def test_percentages_match_paper(self):
        report = attack_surface_report()
        assert report["percentages"]["redirect"] == 70.7
        assert report["percentages"]["host"] == 20.4
        assert report["percentages"]["split"] == 6.5
        assert report["paper_percentages"]["redirect"] == 70.7

    def test_host_interface_reduction(self):
        """redirect + blocked calls never execute on the host."""
        report = attack_surface_report()
        assert report["host_interface_reduction"] == pytest.approx(
            100.0 * (229 + 7) / 324, abs=0.1
        )

    def test_names_in_class(self):
        blocked = names_in_class(SyscallClass.BLOCKED)
        assert "init_module" in blocked
        assert len(blocked) == 7


class TestDynamicAgreement:
    def test_live_decisions_match_static_classes(self, anception_world,
                                                 enrolled_ctx):
        results = verify_dynamic_agreement(anception_world,
                                           enrolled_ctx.task)
        by_name = {name: (static, dynamic)
                   for name, static, dynamic in results}
        assert by_name["open"][1] is Decision.REDIRECT
        assert by_name["getpid"][1] is Decision.HOST
        assert by_name["fork"][1] is Decision.SPLIT
        assert by_name["init_module"][1] is Decision.BLOCK
        assert by_name["socket"][1] is Decision.REDIRECT
        assert by_name["kill"][1] is Decision.HOST

    def test_static_class_agrees_where_unambiguous(self, anception_world,
                                                   enrolled_ctx):
        results = verify_dynamic_agreement(anception_world,
                                           enrolled_ctx.task)
        for name, static, dynamic in results:
            if static is SyscallClass.HOST:
                assert dynamic is Decision.HOST
            if static is SyscallClass.BLOCKED:
                assert dynamic is Decision.BLOCK
            if static is SyscallClass.SPLIT:
                assert dynamic is Decision.SPLIT
