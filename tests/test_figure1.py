"""Figure 1, executable: the exploitation channels and their blocking.

The paper's opening figure shows four arrows:

(1) LoApp triggers a vulnerability in a privileged service, and
(2) uses the stolen privilege to tamper with HiApp;
(3) LoApp triggers an exploit in the network stack, and
(4) uses kernel privilege to steal HiApp's secrets.

On stock Android all four arrows complete.  On Anception the services
and the network stack live in the container, so arrows (2) and (4) are
blocked: "the compromised privileged service cannot directly access the
state of HiApp".
"""

import pytest

from repro.exploits.gingerbreak import GingerBreak
from repro.exploits.sock_sendpage import SockSendpage
from repro.workloads.apps import run_banking_session
from repro.world import AnceptionWorld, NativeWorld


def attack(world, exploit):
    victim, _result, _bank = run_banking_session(world)
    exploit.prepare_world(world)
    running = world.install_and_launch(exploit)
    report = running.run_checked() or running.result
    probes = report.probe_against(victim)
    return report, probes


class TestFigure1a_StockAndroid:
    def test_arrows_1_and_2_service_exploit_reaches_hiapp(self):
        """vold exploit (1) -> HiApp tampering (2) succeeds natively."""
        report, probes = attack(NativeWorld(), GingerBreak())
        assert report.root_tasks  # arrow 1: privilege gained
        assert probes["tamper_code"]  # arrow 2: HiApp reachable
        assert probes["read_memory"]

    def test_arrows_3_and_4_kernel_exploit_reaches_hiapp(self):
        """network-stack exploit (3) -> secret theft (4) succeeds."""
        report, probes = attack(NativeWorld(), SockSendpage())
        assert report.kernel_controls  # arrow 3: kernel owned
        assert probes["read_memory"]  # arrow 4: secrets stolen


class TestFigure1b_Anception:
    def test_arrow_2_blocked(self):
        """The compromised service holds CVM privilege only."""
        world = AnceptionWorld()
        report, probes = attack(world, GingerBreak())
        assert report.root_tasks  # arrow 1 still lands (in the CVM)
        assert not probes["tamper_code"]  # arrow 2 blocked
        assert not probes["read_memory"]
        assert not probes["sniff_input"]

    def test_arrow_4_blocked(self):
        """The network-stack exploit never reaches kernel privilege the
        host honours — it only downs the container."""
        world = AnceptionWorld()
        report, probes = attack(world, SockSendpage())
        assert not report.kernel_controls
        assert not probes["read_memory"]
        assert world.cvm.crashed
        assert not world.kernel.crashed

    def test_hiapp_session_survives_the_attack(self):
        """The banking app's secret is intact after both attempts."""
        world = AnceptionWorld()
        victim, _result, _bank = run_banking_session(world)
        exploit = GingerBreak()
        exploit.prepare_world(world)
        world.install_and_launch(exploit).run()
        secret = victim.ctx.secret_in_memory
        data = victim.task.address_space.read(
            secret["address"], secret["length"], need_prot=0
        )
        assert data == secret["value"]
