"""The lguest-style hypervisor: windows, kmap, signalling."""

import pytest

from repro.errors import HypervisorViolation, SimulationError
from repro.hypervisor import LguestHypervisor, SharedPages
from repro.kernel.kernel import Machine
from repro.perf.costs import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine(total_mb=256)


@pytest.fixture
def hypervisor(machine):
    return LguestHypervisor(machine, guest_mb=64)


class TestGuestLaunch:
    def test_window_sized_from_guest_mb(self, hypervisor):
        hypervisor.launch_guest()
        assert len(hypervisor.guest_window) == 64 * 1024 * 1024 // PAGE_SIZE

    def test_guest_kernel_confined_to_window(self, hypervisor):
        guest = hypervisor.launch_guest()
        assert guest.frame_window is hypervisor.guest_allocator.window

    def test_double_launch_rejected(self, hypervisor):
        hypervisor.launch_guest()
        with pytest.raises(SimulationError):
            hypervisor.launch_guest()

    def test_window_before_launch_rejected(self, hypervisor):
        with pytest.raises(SimulationError):
            hypervisor.guest_window

    def test_host_and_guest_frames_disjoint(self, machine, hypervisor):
        hypervisor.launch_guest()
        host_frame = machine.allocator.allocate()
        guest_frame = hypervisor.guest_allocator.allocate()
        assert host_frame not in hypervisor.guest_window
        assert guest_frame in hypervisor.guest_window

    def test_guest_hotplug_disabled(self, hypervisor):
        guest = hypervisor.launch_guest()
        assert not guest.hotplug_enabled


class TestMemoryWall:
    def test_guest_cannot_map_host_frame(self, machine, hypervisor):
        hypervisor.launch_guest()
        host_frame = machine.allocator.allocate()
        with pytest.raises(HypervisorViolation):
            hypervisor.guest_map_frame(host_frame)

    def test_guest_maps_own_frames(self, hypervisor):
        hypervisor.launch_guest()
        frame = hypervisor.guest_allocator.allocate()
        assert hypervisor.guest_map_frame(frame) == frame

    def test_guest_kernel_cannot_read_host_task_memory(self, machine,
                                                       hypervisor):
        from repro.kernel.memory import MAP_ANONYMOUS, PROT_READ, PROT_WRITE
        from repro.kernel.process import Credentials

        guest = hypervisor.launch_guest()
        host_task = machine.kernel.spawn_task("hiapp", Credentials(10001))
        base = host_task.address_space.mmap(
            PAGE_SIZE, PROT_READ | PROT_WRITE, MAP_ANONYMOUS
        )
        host_task.address_space.write(base, b"banking-password")
        with pytest.raises(HypervisorViolation):
            host_task.address_space.read(base, 16, window=guest.frame_window)


class TestSharedPages:
    def test_kmap_returns_guest_frames(self, hypervisor):
        hypervisor.launch_guest()
        shared = hypervisor.kmap_guest_pages(4)
        assert shared.capacity == 4 * PAGE_SIZE
        assert all(f in hypervisor.guest_window for f in shared.frames)

    def test_host_writes_guest_reads(self, hypervisor):
        hypervisor.launch_guest()
        shared = hypervisor.kmap_guest_pages(2)
        shared.write(b"marshal-me", offset=10)
        assert shared.read(10, offset=10, from_guest=True) == b"marshal-me"

    def test_guest_writes_host_reads(self, hypervisor):
        hypervisor.launch_guest()
        shared = hypervisor.kmap_guest_pages(1)
        shared.write(b"reply", offset=0, from_guest=True)
        assert shared.read(5) == b"reply"

    def test_cross_page_transfer(self, hypervisor):
        hypervisor.launch_guest()
        shared = hypervisor.kmap_guest_pages(2)
        data = bytes(range(256)) * 20  # 5120 bytes: crosses frame boundary
        shared.write(data)
        assert shared.read(len(data)) == data

    def test_overflow_rejected(self, hypervisor):
        hypervisor.launch_guest()
        shared = hypervisor.kmap_guest_pages(1)
        with pytest.raises(SimulationError):
            shared.write(b"x" * (PAGE_SIZE + 1))

    def test_kmap_rejects_host_frames(self, machine, hypervisor):
        hypervisor.launch_guest()
        host_frame = machine.allocator.allocate()
        with pytest.raises(SimulationError):
            SharedPages(machine.physical, [host_frame],
                        hypervisor.guest_window)


class TestSignalling:
    def test_hypercall_charges_world_switch(self, machine, hypervisor):
        hypervisor.launch_guest()
        before = machine.clock.now_ns
        hypervisor.hypercall("test")
        assert machine.clock.now_ns - before == machine.costs.world_switch_ns
        assert hypervisor.hypercall_count == 1

    def test_interrupt_charges_world_switch(self, machine, hypervisor):
        hypervisor.launch_guest()
        before = machine.clock.now_ns
        hypervisor.inject_interrupt("test")
        assert machine.clock.now_ns - before == machine.costs.world_switch_ns
        assert hypervisor.interrupt_count == 1

    def test_memory_stats(self, hypervisor):
        hypervisor.launch_guest()
        assigned, used, free = hypervisor.guest_memory_stats()
        assert assigned == 64 * 1024
        assert used + free == assigned
