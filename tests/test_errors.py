"""Error-type behaviour (errno rendering, hierarchy)."""

import errno

import pytest

from repro.errors import (
    HypervisorViolation,
    ProcessKilled,
    ReproError,
    SecurityViolation,
    SimulationError,
    SyscallError,
)


class TestSyscallError:
    def test_renders_errno_name(self):
        exc = SyscallError(errno.ENOENT, "missing")
        assert "ENOENT" in str(exc)
        assert "missing" in str(exc)

    def test_carries_errno_value(self):
        assert SyscallError(errno.EPERM).errno == errno.EPERM

    def test_call_site_included(self):
        exc = SyscallError(errno.EBADF, call="read")
        assert "read" in str(exc)

    def test_unknown_errno_renders_number(self):
        assert "999" in str(SyscallError(999))


class TestHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc_type in (SyscallError, SecurityViolation,
                         HypervisorViolation, SimulationError,
                         ProcessKilled):
            assert issubclass(exc_type, ReproError)

    def test_hypervisor_violation_is_security_violation(self):
        assert issubclass(HypervisorViolation, SecurityViolation)

    def test_process_killed_fields(self):
        exc = ProcessKilled(42, "uid change")
        assert exc.pid == 42
        assert "uid change" in str(exc)


class TestExecCache:
    def test_cache_paths_are_system_chosen(self, anception_world):
        cache = anception_world.anception.exec_cache
        path_a = cache.stage("/data/data/com.x/evil", b"\x7fELF{}")
        path_b = cache.stage("/data/data/com.x/evil", b"\x7fELF{}")
        assert path_a != path_b  # counter-prefixed, never attacker-chosen
        assert path_a.startswith("/data/anception-exec-cache/")

    def test_cache_not_listable_by_apps(self, anception_world,
                                        enrolled_ctx):
        from repro.errors import SyscallError

        cache = anception_world.anception.exec_cache
        cache.stage("/data/data/com.x/bin", b"\x7fELF{}")
        with pytest.raises(SyscallError):
            enrolled_ctx.libc.listdir("/data/anception-exec-cache")

    def test_cache_not_writable_by_apps(self, anception_world,
                                        enrolled_ctx):
        from repro.errors import SyscallError
        from repro.kernel import vfs

        with pytest.raises(SyscallError):
            enrolled_ctx.libc.open(
                "/data/anception-exec-cache/planted",
                vfs.O_WRONLY | vfs.O_CREAT,
            )

    def test_entries_visible_to_the_system(self, anception_world):
        cache = anception_world.anception.exec_cache
        cache.stage("/data/data/com.x/a", b"\x7fELF{}")
        assert len(cache.entries()) == 1
