"""Shared fixtures: booted worlds and enrolled test apps."""

from __future__ import annotations

import pytest

from repro.android.app import App, AppManifest
from repro.core.snapshot import allow_app_modules
from repro.world import AnceptionWorld, NativeWorld

# Test apps are defined in tests.* modules; snapshots of worlds that
# launched them need those modules resolvable on restore.
allow_app_modules("tests.")


class ScratchApp(App):
    """A do-nothing app used to obtain an app context in tests."""

    manifest = AppManifest(
        "com.test.scratch",
        permissions=("INTERNET",),
        initial_data={"seed.txt": b"seed-content"},
    )

    def main(self, ctx):
        return {"ok": True}


@pytest.fixture
def native_world():
    return NativeWorld()


@pytest.fixture
def anception_world():
    return AnceptionWorld()


@pytest.fixture
def native_ctx(native_world):
    running = native_world.install_and_launch(ScratchApp())
    running.run()
    return running.ctx


@pytest.fixture
def enrolled_ctx(anception_world):
    running = anception_world.install_and_launch(ScratchApp())
    running.run()
    return running.ctx


@pytest.fixture
def both_worlds():
    return {"native": NativeWorld(), "anception": AnceptionWorld()}


@pytest.fixture
def tri_worlds():
    """Native, synchronous delegation, and fully-async delegation.

    The three configurations every equivalence suite compares: the same
    op script must produce identical outcomes, errnos, and final VFS
    trees in all of them.  The async world runs with BOTH overlap lanes
    on — write-behind file windows and batched binder windows — so the
    catalogue proves equivalence against the most aggressive deferral
    the layer supports.
    """
    return {
        "native": NativeWorld(),
        "anception": AnceptionWorld(),
        "write-behind": AnceptionWorld(async_delegation=True,
                                       binder_ring=True),
    }


@pytest.fixture
def quad_worlds(tri_worlds):
    """The three classic modes plus a snapshot/resume world.

    The fourth mode replays each script's first half on a fully-async
    Anception world, snapshots mid-script, restores into a fresh world
    object, and finishes there — pinning restore≡boot against the same
    catalogue the other modes already agree on.  The async knobs stay
    on so snapshots catch staged write-behind and binder windows.
    """
    from tests.differential.harness import SnapshotResume

    worlds = dict(tri_worlds)
    worlds["snapshot-resume"] = SnapshotResume(
        AnceptionWorld(async_delegation=True, binder_ring=True)
    )
    return worlds


@pytest.fixture(autouse=True)
def _drain_compromise_events():
    """Isolate the global compromise-event log between tests."""
    from repro.events import drain_compromises

    drain_compromises()
    yield
    drain_compromises()
