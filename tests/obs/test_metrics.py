"""MetricsRegistry: counters, histograms, JSON round-trips."""

import json

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_US,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_labelled_increments(self):
        counter = Counter("c", ("a", "b"))
        counter.inc(a="x", b="y")
        counter.inc(2, a="x", b="y")
        counter.inc(a="x", b="z")
        assert counter.value(a="x", b="y") == 3
        assert counter.value(a="x", b="z") == 1
        assert counter.total() == 4

    def test_snapshot_is_sorted_and_labelled(self):
        counter = Counter("c", ("k",))
        counter.inc(k="beta")
        counter.inc(k="alpha")
        snap = counter.snapshot()
        assert snap == [
            {"labels": {"k": "alpha"}, "value": 1},
            {"labels": {"k": "beta"}, "value": 1},
        ]


class TestHistogram:
    def test_fixed_buckets(self):
        histogram = Histogram("h", (10, 100), unit="us")
        for value in (5, 50, 500):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["counts"] == [1, 1, 1]  # <=10, <=100, +inf
        assert snap["count"] == 3
        assert snap["sum"] == 555

    def test_default_bucket_bounds_ascend(self):
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            DEFAULT_LATENCY_BUCKETS_US
        )


class TestRegistry:
    def _syscall_span(self, dur_ns=760, disposition="native"):
        return {
            "type": "span",
            "kind": "syscall",
            "name": "getpid",
            "begin_ns": 0,
            "end_ns": dur_ns,
            "sclass": "host",
            "args": {"disposition": disposition},
        }

    def test_syscall_span_updates_counter_and_histogram(self):
        registry = MetricsRegistry()
        registry.observe_record(self._syscall_span())
        registry.observe_record(self._syscall_span(disposition="anception"))
        assert registry.syscalls_total.value(
            sclass="host", disposition="native"
        ) == 1
        assert registry.syscall_latency_us.count == 2

    def test_world_switch_and_channel(self):
        registry = MetricsRegistry()
        registry.observe_record({
            "type": "span", "kind": "world-switch", "name": "irq:x",
            "begin_ns": 0, "end_ns": 100,
            "args": {"direction": "host->guest"},
        })
        registry.observe_record({
            "type": "span", "kind": "channel-copy", "name": "to-guest",
            "begin_ns": 0, "end_ns": 100,
            "args": {"direction": "to-guest", "bytes": 4096, "chunks": 1},
        })
        assert registry.world_switches_total.value(
            direction="host->guest"
        ) == 1
        assert registry.channel_bytes_total.value(direction="to-guest") == 4096

    def test_blocked_event_counted_separately_from_proxy_spans(self):
        registry = MetricsRegistry()
        registry.observe_record({
            "type": "event", "kind": "proxy", "name": "blocked:reboot",
            "ts_ns": 0, "args": {"decision": "block"},
        })
        registry.observe_record({
            "type": "span", "kind": "proxy", "name": "forward:write",
            "begin_ns": 0, "end_ns": 10, "args": {},
        })
        assert registry.blocked_calls_total.total() == 1
        assert registry.proxy_calls_total.total() == 1

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.observe_record(self._syscall_span())
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_live_workload_populates_registry(self):
        from repro.obs.runner import run_traced

        result = run_traced("write4k", logcat=False)
        metrics = result.metrics
        assert metrics.world_switches_total.total() >= 2
        assert metrics.channel_bytes_total.value(direction="to-guest") >= 4096
        assert metrics.syscalls_total.total() >= 3
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestQuantiles:
    def test_interpolates_within_bucket(self):
        histogram = Histogram("h", (10, 20, 30))
        for value in (5, 15, 25, 28):
            histogram.observe(value)
        # p50 rank = 2.0 lands at the top of the (10, 20] bucket.
        assert histogram.quantile(0.50) == 20.0
        # p25 rank = 1.0 -> the first bucket, interpolated from 0.
        assert histogram.quantile(0.25) == 10.0

    def test_first_bucket_interpolates_from_zero(self):
        histogram = Histogram("h", (100,))
        histogram.observe(1)
        histogram.observe(1)
        assert histogram.quantile(0.5) == 50.0

    def test_overflow_bucket_reports_last_finite_bound(self):
        histogram = Histogram("h", (10, 100))
        histogram.observe(5000)
        assert histogram.quantile(0.99) == 100.0

    def test_empty_histogram_is_zero(self):
        assert Histogram("h", (10,)).quantile(0.5) == 0.0

    def test_rejects_out_of_range(self):
        histogram = Histogram("h", (10,))
        try:
            histogram.quantile(1.5)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_snapshot_surfaces_p50_p95_p99(self):
        histogram = Histogram("h", DEFAULT_LATENCY_BUCKETS_US, unit="us")
        for value in range(1, 101):
            histogram.observe(value)
        quantiles = histogram.snapshot()["quantiles"]
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
        assert quantiles["p99"] <= 200  # inside the (100, 200] bucket

    def test_registry_snapshot_sorted_and_quantiled(self):
        registry = MetricsRegistry()
        registry.observe_record({
            "type": "span", "kind": "syscall", "name": "write",
            "begin_ns": 0, "end_ns": 42_000, "sclass": "fs",
            "args": {"disposition": "delegated"},
        })
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])
        assert list(snapshot["histograms"]) == sorted(snapshot["histograms"])
        latency = snapshot["histograms"]["syscall_latency_us"]
        # One sample in (20, 50]: p50 interpolates halfway up the bucket.
        assert latency["quantiles"]["p50"] == 35.0
