"""MetricsRegistry: counters, histograms, JSON round-trips."""

import json

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_US,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_labelled_increments(self):
        counter = Counter("c", ("a", "b"))
        counter.inc(a="x", b="y")
        counter.inc(2, a="x", b="y")
        counter.inc(a="x", b="z")
        assert counter.value(a="x", b="y") == 3
        assert counter.value(a="x", b="z") == 1
        assert counter.total() == 4

    def test_snapshot_is_sorted_and_labelled(self):
        counter = Counter("c", ("k",))
        counter.inc(k="beta")
        counter.inc(k="alpha")
        snap = counter.snapshot()
        assert snap == [
            {"labels": {"k": "alpha"}, "value": 1},
            {"labels": {"k": "beta"}, "value": 1},
        ]


class TestHistogram:
    def test_fixed_buckets(self):
        histogram = Histogram("h", (10, 100), unit="us")
        for value in (5, 50, 500):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["counts"] == [1, 1, 1]  # <=10, <=100, +inf
        assert snap["count"] == 3
        assert snap["sum"] == 555

    def test_default_bucket_bounds_ascend(self):
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            DEFAULT_LATENCY_BUCKETS_US
        )


class TestRegistry:
    def _syscall_span(self, dur_ns=760, disposition="native"):
        return {
            "type": "span",
            "kind": "syscall",
            "name": "getpid",
            "begin_ns": 0,
            "end_ns": dur_ns,
            "sclass": "host",
            "args": {"disposition": disposition},
        }

    def test_syscall_span_updates_counter_and_histogram(self):
        registry = MetricsRegistry()
        registry.observe_record(self._syscall_span())
        registry.observe_record(self._syscall_span(disposition="anception"))
        assert registry.syscalls_total.value(
            sclass="host", disposition="native"
        ) == 1
        assert registry.syscall_latency_us.count == 2

    def test_world_switch_and_channel(self):
        registry = MetricsRegistry()
        registry.observe_record({
            "type": "span", "kind": "world-switch", "name": "irq:x",
            "begin_ns": 0, "end_ns": 100,
            "args": {"direction": "host->guest"},
        })
        registry.observe_record({
            "type": "span", "kind": "channel-copy", "name": "to-guest",
            "begin_ns": 0, "end_ns": 100,
            "args": {"direction": "to-guest", "bytes": 4096, "chunks": 1},
        })
        assert registry.world_switches_total.value(
            direction="host->guest"
        ) == 1
        assert registry.channel_bytes_total.value(direction="to-guest") == 4096

    def test_blocked_event_counted_separately_from_proxy_spans(self):
        registry = MetricsRegistry()
        registry.observe_record({
            "type": "event", "kind": "proxy", "name": "blocked:reboot",
            "ts_ns": 0, "args": {"decision": "block"},
        })
        registry.observe_record({
            "type": "span", "kind": "proxy", "name": "forward:write",
            "begin_ns": 0, "end_ns": 10, "args": {},
        })
        assert registry.blocked_calls_total.total() == 1
        assert registry.proxy_calls_total.total() == 1

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.observe_record(self._syscall_span())
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_live_workload_populates_registry(self):
        from repro.obs.runner import run_traced

        result = run_traced("write4k", logcat=False)
        metrics = result.metrics
        assert metrics.world_switches_total.total() >= 2
        assert metrics.channel_bytes_total.value(direction="to-guest") >= 4096
        assert metrics.syscalls_total.total() >= 3
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
