"""Trace-analyzer tests: nesting, breakdowns, ratios, determinism.

Synthetic Chrome-trace dicts pin the arithmetic exactly; a real exported
trace pins the end-to-end property CI leans on — :func:`report_json`
is byte-identical across repeated analyses of the same trace.
"""

import json

import pytest

from repro.obs.export import make_trace_id, to_chrome_trace
from repro.obs.report import _nest, analyze, report_json
from repro.obs.runner import run_traced


def _span(cat, name, ts, dur, pid=1, tid=1, args=None):
    return {"ph": "X", "cat": cat, "name": name, "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "args": args or {}}


def _instant(cat, name, ts, args=None):
    return {"ph": "i", "cat": cat, "name": name, "ts": ts, "s": "t",
            "pid": 1, "tid": 1, "args": args or {}}


def _trace(events, trace_id="t-1", workload="w"):
    return {
        "traceEvents": events,
        "otherData": {"trace_id": trace_id, "workload": workload},
    }


class TestNesting:
    def test_containment_splits_self_from_child(self):
        nodes = _nest([
            _span("syscall", "write", 0.0, 10.0),
            _span("channel-copy", "copy", 2.0, 3.0),
        ])
        self_by_cat = {n["e"]["cat"]: n["self"] for n in nodes}
        assert self_by_cat == {"syscall": 7.0, "channel-copy": 3.0}

    def test_nesting_crosses_lanes(self):
        # The hypervisor lane (pid 3) sits inside the host lane's (pid 1)
        # syscall by timestamp; containment must ignore pid/tid.
        nodes = _nest([
            _span("syscall", "write", 0.0, 10.0, pid=1),
            _span("world-switch", "hypercall", 1.0, 4.0, pid=3),
        ])
        switch = next(n for n in nodes if n["e"]["cat"] == "world-switch")
        assert switch["under_syscall"]
        assert not switch["top_syscall"]

    def test_nested_syscall_is_not_top(self):
        # A guest-side dispatch inside the host syscall counts once on
        # the critical path (the outer span), not twice.
        nodes = _nest([
            _span("syscall", "host-write", 0.0, 10.0),
            _span("syscall", "guest-write", 2.0, 5.0),
        ])
        tops = [n for n in nodes if n["top_syscall"]]
        assert len(tops) == 1
        assert tops[0]["e"]["name"] == "host-write"

    def test_adjacent_spans_do_not_nest(self):
        nodes = _nest([
            _span("syscall", "a", 0.0, 5.0),
            _span("syscall", "b", 5.0, 5.0),
        ])
        assert all(n["top_syscall"] for n in nodes)


class TestAnalyze:
    def test_critical_path_components(self):
        report = analyze(_trace([
            _span("syscall", "write", 0.0, 10.0),
            _span("world-switch", "hypercall", 1.0, 2.0),
            _span("channel-copy", "copy", 4.0, 3.0),
            _span("proxy", "stray", 20.0, 2.0),  # outside any syscall
        ]))
        path = report["critical_path"]
        assert path["syscalls"] == 1
        assert path["total_us"] == 10.0
        assert path["components_us"] == {
            "channel-copy": 3.0,
            "syscall": 5.0,
            "world-switch": 2.0,
        }

    def test_doorbell_efficiency(self):
        report = analyze(_trace([
            _span("world-switch", "hypercall", 0.0, 1.0),
            _span("world-switch", "irq", 2.0, 1.0),
            _span("ring-submit", "d", 4.0, 0.5),
            _span("ring-submit", "d", 5.0, 0.5),
            _span("ring-complete", "d", 6.0, 0.5),
            _instant("doorbell-coalesced", "submit", 7.0,
                     {"coalesced": 4}),
        ]))
        doorbells = report["doorbells"]
        assert doorbells["world_switches"] == 2
        assert doorbells["ring_descriptors"] == 3
        assert doorbells["descriptors_per_doorbell"] == 1.5
        assert doorbells["coalesced_doorbells"] == 1
        assert doorbells["max_coalesced"] == 4

    def test_cache_hit_ratio(self):
        report = analyze(_trace([
            _span("cache-hit", "read", 0.0, 1.0),
            _span("cache-hit", "read", 2.0, 1.0),
            _span("cache-hit", "read", 4.0, 1.0),
            _instant("cache-miss", "read", 6.0),
        ]))
        assert report["cache"] == {
            "hits": 3, "misses": 1, "hit_ratio": 0.75,
        }

    def test_write_behind_overlap_ratio(self):
        # 4000 ns of lane time, 1000 ns actually waited -> 75% overlap.
        report = analyze(_trace([
            _span("wb-drain", "drain", 0.0, 2.0, args={"lane_ns": 4000}),
            _instant("wb-fence", "fence", 5.0, {"waited_ns": 1000}),
        ]))
        assert report["write_behind"] == {
            "drains": 1, "lane_us": 4.0, "waited_us": 1.0,
            "overlap_ratio": 0.75,
        }

    def test_empty_trace(self):
        report = analyze(_trace([]))
        assert report["spans"] == 0
        assert report["window_us"] == 0.0
        assert report["cache"]["hit_ratio"] == 0.0
        assert report["write_behind"]["overlap_ratio"] == 0.0
        assert report["doorbells"]["descriptors_per_doorbell"] == 0.0

    def test_top_spans_truncated_and_sorted(self):
        events = [
            _span("proxy", f"call-{i}", i * 10.0, float(i + 1))
            for i in range(5)
        ]
        report = analyze(_trace(events), top=3)
        names = [row["name"] for row in report["top_spans"]]
        assert names == ["call-4", "call-3", "call-2"]

    def test_metadata_passthrough(self):
        report = analyze(_trace([], trace_id="abc", workload="writeburst"))
        assert report["trace_id"] == "abc"
        assert report["workload"] == "writeburst"


class TestDeterminism:
    @pytest.fixture(scope="class")
    def real_trace(self):
        result = run_traced("writeburst", read_cache=True,
                            write_behind=True)
        return to_chrome_trace(
            result.records,
            trace_id=make_trace_id("writeburst", 0),
            workload="writeburst",
        )

    def test_report_json_byte_identical(self, real_trace):
        assert report_json(real_trace) == report_json(real_trace)

    def test_report_json_round_trips(self, real_trace):
        report = json.loads(report_json(real_trace))
        assert report["spans"] > 0
        assert report["critical_path"]["syscalls"] > 0

    def test_real_trace_has_wb_overlap(self, real_trace):
        report = analyze(real_trace)
        assert report["write_behind"]["drains"] > 0
        assert 0.0 <= report["write_behind"]["overlap_ratio"] <= 1.0
