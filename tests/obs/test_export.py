"""Exporter tests: Chrome trace schema, anatomy, determinism, ftrace.

The headline check is the acceptance criterion: a redirected 4 KB write
traced to Chrome JSON decomposes into at least two ``world-switch``
spans, at least one ``channel-copy`` span, and one in-guest ``syscall``
span — the anatomy the paper's Table I attributes by hand.
"""

import collections
import json

import pytest

from repro.kernel import vfs
from repro.obs.bus import TraceBus
from repro.obs.export import (
    chrome_trace_json,
    make_trace_id,
    to_chrome_trace,
    to_ftrace,
)
from repro.perf.costs import PAGE_SIZE


def _trace_redirected_write(anception_world, enrolled_ctx):
    """Trace exactly one redirected 4 KB write; returns the records."""
    bus = TraceBus.install(anception_world.clock)
    fd = enrolled_ctx.libc.open(
        enrolled_ctx.data_path("chrome"), vfs.O_WRONLY | vfs.O_CREAT
    )
    with bus.capture() as capture:
        enrolled_ctx.libc.write(fd, b"c" * PAGE_SIZE)
    return capture.records


def _complete_events(trace):
    return [e for e in trace["traceEvents"] if e["ph"] == "X"]


class TestChromeTraceSchema:
    @pytest.fixture
    def trace(self, anception_world, enrolled_ctx):
        records = _trace_redirected_write(anception_world, enrolled_ctx)
        return to_chrome_trace(records, trace_id=make_trace_id("w", 0),
                               workload="w")

    def test_required_fields_present(self, trace):
        assert trace["otherData"]["trace_id"] == make_trace_id("w", 0)
        for event in trace["traceEvents"]:
            assert "ph" in event
            assert "pid" in event
            assert "name" in event
            if event["ph"] != "M":
                assert "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "tid" in event

    def test_redirected_write_anatomy(self, trace):
        by_cat = collections.Counter(
            e["cat"] for e in _complete_events(trace)
        )
        assert by_cat["world-switch"] >= 2
        assert by_cat["channel-copy"] >= 1
        # the native write executed in the guest: a syscall span on the
        # process lane named "cvm"
        pid_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        in_guest = [
            e for e in _complete_events(trace)
            if e["cat"] == "syscall" and pid_names[e["pid"]] == "cvm"
        ]
        assert len(in_guest) == 1
        assert in_guest[0]["name"] == "write"

    def test_ts_monotone_per_tid(self, trace):
        last = {}
        for event in _complete_events(trace):
            lane = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(lane, float("-inf"))
            last[lane] = event["ts"]

    def test_spans_properly_nested_per_tid(self, trace):
        lanes = collections.defaultdict(list)
        for event in _complete_events(trace):
            lanes[(event["pid"], event["tid"])].append(event)
        for events in lanes.values():
            stack = []  # open span end-timestamps
            for event in events:
                start, end = event["ts"], event["ts"] + event["dur"]
                while stack and start >= stack[-1]:
                    stack.pop()
                if stack:
                    assert end <= stack[-1] + 1e-9, "partially overlapping"
                stack.append(end)

    def test_process_metadata_names_all_lanes(self, trace):
        named = {
            e["pid"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        used = {e["pid"] for e in _complete_events(trace)}
        assert used <= named


class TestDeterminism:
    def test_trace_id_depends_on_workload_and_seed_only(self):
        assert make_trace_id("table1", 0) == make_trace_id("table1", 0)
        assert make_trace_id("table1", 0) != make_trace_id("table1", 1)
        assert make_trace_id("table1", 0) != make_trace_id("write4k", 0)

    def test_repeated_runs_are_byte_identical(self):
        from repro.obs.runner import run_traced

        outputs = []
        for _ in range(2):
            result = run_traced("write4k", seed=7)
            outputs.append(chrome_trace_json(
                result.records, trace_id=result.trace_id,
                workload="write4k",
            ))
        assert outputs[0] == outputs[1]
        assert make_trace_id("write4k", 7) in outputs[0]

    def test_ftrace_runs_are_byte_identical(self):
        from repro.obs.runner import run_traced

        outputs = [
            to_ftrace(run_traced("getpid").records, trace_id="t",
                      workload="getpid")
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]


class TestFtrace:
    def test_ftrace_dump_lines(self, anception_world, enrolled_ctx):
        records = _trace_redirected_write(anception_world, enrolled_ctx)
        text = to_ftrace(records, trace_id="abc", workload="w")
        assert "# trace_id: abc" in text
        assert "syscall: write" in text
        assert "world-switch:" in text
        assert "channel-copy:" in text

    def test_chrome_json_is_valid_json(self, anception_world, enrolled_ctx):
        records = _trace_redirected_write(anception_world, enrolled_ctx)
        parsed = json.loads(chrome_trace_json(records))
        assert isinstance(parsed["traceEvents"], list)


class TestLaneMapping:
    """Edge cases in the kernel->pid / task->tid lane assignment."""

    def test_lane_ids_are_stable_and_sorted(self):
        records = [
            {"type": "span", "kernel": "host"},
            {"type": "event", "kernel": "cvm:chrome"},
            {"type": "span", "kernel": "host"},
        ]
        from repro.obs.export import _lane_ids
        assert _lane_ids(records) == {"cvm:chrome": 1, "host": 2}

    def test_missing_kernel_falls_back_to_none_lane(self):
        from repro.obs.export import _lane_ids, _record_lane
        records = [{"type": "span"}, {"type": "span", "kernel": ""}]
        pids = _lane_ids(records)
        assert pids == {"(none)": 1}
        pid, _tid = _record_lane({"type": "span"}, pids)
        assert pid == 1

    def test_missing_pid_maps_to_tid_zero(self):
        from repro.obs.export import _lane_ids, _record_lane
        records = [{"type": "span", "kernel": "host"}]
        pids = _lane_ids(records)
        _pid, tid = _record_lane(records[0], pids)
        assert tid == 0

    def test_charge_records_do_not_claim_lanes(self):
        from repro.obs.export import _lane_ids
        records = [
            {"type": "charge", "kernel": "ghost"},
            {"type": "span", "kernel": "host"},
        ]
        assert _lane_ids(records) == {"host": 1}


class TestNestedSpanOrdering:
    def _records(self, clock):
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            with bus.span("syscall", "outer", kernel="host"):
                with bus.span("channel-copy", "inner", kernel="host"):
                    clock.advance(1_000, "copy")
                clock.advance(2_000, "rest")
        return capture.records

    def test_parent_sorts_before_equal_ts_child(self):
        from repro.clock import SimClock
        trace = to_chrome_trace(self._records(SimClock()))
        spans = _complete_events(trace)
        # Same start timestamp: the longer (outer) span must come first
        # so Chrome nests the child under it.
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert spans[0]["dur"] > spans[1]["dur"]


class TestFtraceRoundTrip:
    """Every captured record surfaces as exactly one ftrace body line."""

    def test_line_per_record_with_args(self, anception_world,
                                       enrolled_ctx):
        records = _trace_redirected_write(anception_world, enrolled_ctx)
        printable = [r for r in records if r["type"] in ("span", "event")]
        text = to_ftrace(records, trace_id="rt", workload="w")
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(lines) == len(printable)
        assert "# workload: w" in text
        # Span lines carry their duration; sorted args ride along.
        syscall_lines = [l for l in lines if "syscall: write" in l]
        assert syscall_lines and all("dur=" in l for l in syscall_lines)

    def test_missing_task_prints_placeholder(self):
        from repro.clock import SimClock
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            bus.event("irq", "bare")
        text = to_ftrace(capture.records)
        assert "<none>-0" in text
