"""TraceBus: spans, events, captures, and clock neutrality."""

from repro.clock import SimClock
from repro.kernel import vfs
from repro.obs.bus import NULL_SPAN, LogcatSink, TraceBus, maybe_span
from repro.perf.costs import PAGE_SIZE


class TestSpans:
    def test_span_captures_simulated_window(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            with bus.span("syscall", "write", kernel="host") as span:
                clock.advance(500, "work")
                span.set(disposition="native")
        (record,) = capture.spans()
        assert record["begin_ns"] == 0
        assert record["end_ns"] == 500
        assert record["args"]["disposition"] == "native"
        assert record["kernel"] == "host"

    def test_span_records_exception(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            try:
                with bus.span("syscall", "open"):
                    raise ValueError("boom")
            except ValueError:
                pass
        (record,) = capture.spans()
        assert record["args"]["error"] == "ValueError"

    def test_event_is_instantaneous(self):
        clock = SimClock()
        clock.advance(42)
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            bus.event("irq", "irq:test", kernel="hypervisor")
        (record,) = capture.events("irq")
        assert record["ts_ns"] == 42

    def test_task_fields_recorded(self, anception_world, enrolled_ctx):
        bus = TraceBus.install(anception_world.clock)
        with bus.capture() as capture:
            enrolled_ctx.libc.getpid()
        span = capture.spans("syscall")[0]
        assert span["pid"] == enrolled_ctx.task.pid
        assert span["uid"] == enrolled_ctx.task.credentials.uid
        assert span["re"] == 1
        assert span["sclass"] == "host"


class TestDisabled:
    def test_disabled_bus_hands_out_null_span(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        assert bus.span("syscall", "write") is NULL_SPAN
        assert maybe_span(clock, "syscall", "write") is NULL_SPAN

    def test_no_bus_at_all(self):
        clock = SimClock()
        assert maybe_span(clock, "syscall", "write") is NULL_SPAN

    def test_disabled_bus_records_nothing(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.span("syscall", "write"):
            clock.advance(10)
        bus.event("irq", "x")
        assert bus.records == []

    def test_install_is_idempotent(self):
        clock = SimClock()
        assert TraceBus.install(clock) is TraceBus.install(clock)


class TestCaptureNesting:
    def test_inner_capture_sees_only_its_window(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as outer:
            bus.event("irq", "before")
            with bus.capture() as inner:
                bus.event("irq", "inside")
            bus.event("irq", "after")
        assert [r["name"] for r in inner.events()] == ["inside"]
        assert [r["name"] for r in outer.events()] == [
            "before", "inside", "after",
        ]

    def test_records_freed_after_last_capture(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture():
            bus.event("irq", "x")
        assert bus.records == []
        assert not bus.enabled


class TestClockNeutrality:
    """Observability is side-effect-free on simulated time."""

    def test_traced_run_has_identical_elapsed_time(self):
        from repro.obs.runner import run_traced

        traced = run_traced("write4k")
        untraced = run_traced("write4k", observe=False)
        assert traced.elapsed_ns == untraced.elapsed_ns
        assert untraced.records == []

    def test_capture_itself_advances_nothing(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture():
            with bus.span("syscall", "noop"):
                pass
            bus.event("irq", "noop")
        assert clock.now_ns == 0


class TestLogcatSink:
    def test_spans_become_kernel_log_lines(self, anception_world,
                                            enrolled_ctx):
        log_device = anception_world.machine.kernel.log_device
        bus = TraceBus.install(anception_world.clock)
        sink = LogcatSink(log_device, kinds=("syscall",))
        bus.subscribe(sink)
        try:
            with bus.capture():
                fd = enrolled_ctx.libc.open(
                    enrolled_ctx.data_path("lc"), vfs.O_WRONLY | vfs.O_CREAT
                )
                enrolled_ctx.libc.write(fd, b"z" * PAGE_SIZE)
        finally:
            bus.unsubscribe(sink)
        lines = [
            msg for tag, msg in log_device.entries
            if tag == "kernel" and msg.startswith("trace:")
        ]
        assert any("syscall write" in line for line in lines)
        assert sink.lines == len(lines)


class TestSinkHardening:
    """A raising sink is isolated, counted, and eventually evicted."""

    def _bus(self):
        return TraceBus.install(SimClock())

    def test_raising_sink_does_not_abort_dispatch(self):
        bus = self._bus()
        seen = []

        def bad(_record):
            raise RuntimeError("sink bug")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        with bus.capture() as capture:
            bus.event("irq", "tick")
        assert len(capture.events()) == 1
        assert len(seen) == 1  # the later sink still ran
        assert bus.sink_errors == 1

    def test_sink_errors_counted_per_failure(self):
        bus = self._bus()

        def bad(_record):
            raise ValueError("boom")

        bus.subscribe(bad)
        with bus.capture():
            bus.event("irq", "a")
            bus.event("irq", "b")
        assert bus.sink_errors == 2

    def test_sink_dropped_after_failure_limit(self):
        bus = self._bus()
        calls = []

        def bad(record):
            calls.append(record)
            raise RuntimeError("always fails")

        bus.subscribe(bad)
        with bus.capture():
            for i in range(bus.SINK_FAILURE_LIMIT + 2):
                bus.event("irq", f"tick-{i}")
        # Exactly LIMIT deliveries reached the sink before eviction.
        assert len(calls) == bus.SINK_FAILURE_LIMIT
        assert bus.sink_errors == bus.SINK_FAILURE_LIMIT
        assert bus.dropped_sinks == 1
        assert bad not in bus._sinks

    def test_healthy_sink_survives_neighbour_eviction(self):
        bus = self._bus()
        seen = []

        def bad(_record):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        total = bus.SINK_FAILURE_LIMIT + 3
        with bus.capture():
            for i in range(total):
                bus.event("irq", f"tick-{i}")
        assert len(seen) == total
        assert bus.dropped_sinks == 1

    def test_unsubscribe_clears_failure_tally(self):
        bus = self._bus()

        def flaky(_record):
            raise RuntimeError("boom")

        bus.subscribe(flaky)
        with bus.capture():
            bus.event("irq", "a")
        bus.unsubscribe(flaky)
        bus.subscribe(flaky)  # re-attached: the budget starts fresh
        with bus.capture():
            bus.event("irq", "b")
        assert bus.dropped_sinks == 0
        assert flaky in bus._sinks
