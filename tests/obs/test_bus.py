"""TraceBus: spans, events, captures, and clock neutrality."""

from repro.clock import SimClock
from repro.kernel import vfs
from repro.obs.bus import NULL_SPAN, LogcatSink, TraceBus, maybe_span
from repro.perf.costs import PAGE_SIZE


class TestSpans:
    def test_span_captures_simulated_window(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            with bus.span("syscall", "write", kernel="host") as span:
                clock.advance(500, "work")
                span.set(disposition="native")
        (record,) = capture.spans()
        assert record["begin_ns"] == 0
        assert record["end_ns"] == 500
        assert record["args"]["disposition"] == "native"
        assert record["kernel"] == "host"

    def test_span_records_exception(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            try:
                with bus.span("syscall", "open"):
                    raise ValueError("boom")
            except ValueError:
                pass
        (record,) = capture.spans()
        assert record["args"]["error"] == "ValueError"

    def test_event_is_instantaneous(self):
        clock = SimClock()
        clock.advance(42)
        bus = TraceBus.install(clock)
        with bus.capture() as capture:
            bus.event("irq", "irq:test", kernel="hypervisor")
        (record,) = capture.events("irq")
        assert record["ts_ns"] == 42

    def test_task_fields_recorded(self, anception_world, enrolled_ctx):
        bus = TraceBus.install(anception_world.clock)
        with bus.capture() as capture:
            enrolled_ctx.libc.getpid()
        span = capture.spans("syscall")[0]
        assert span["pid"] == enrolled_ctx.task.pid
        assert span["uid"] == enrolled_ctx.task.credentials.uid
        assert span["re"] == 1
        assert span["sclass"] == "host"


class TestDisabled:
    def test_disabled_bus_hands_out_null_span(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        assert bus.span("syscall", "write") is NULL_SPAN
        assert maybe_span(clock, "syscall", "write") is NULL_SPAN

    def test_no_bus_at_all(self):
        clock = SimClock()
        assert maybe_span(clock, "syscall", "write") is NULL_SPAN

    def test_disabled_bus_records_nothing(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.span("syscall", "write"):
            clock.advance(10)
        bus.event("irq", "x")
        assert bus.records == []

    def test_install_is_idempotent(self):
        clock = SimClock()
        assert TraceBus.install(clock) is TraceBus.install(clock)


class TestCaptureNesting:
    def test_inner_capture_sees_only_its_window(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture() as outer:
            bus.event("irq", "before")
            with bus.capture() as inner:
                bus.event("irq", "inside")
            bus.event("irq", "after")
        assert [r["name"] for r in inner.events()] == ["inside"]
        assert [r["name"] for r in outer.events()] == [
            "before", "inside", "after",
        ]

    def test_records_freed_after_last_capture(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture():
            bus.event("irq", "x")
        assert bus.records == []
        assert not bus.enabled


class TestClockNeutrality:
    """Observability is side-effect-free on simulated time."""

    def test_traced_run_has_identical_elapsed_time(self):
        from repro.obs.runner import run_traced

        traced = run_traced("write4k")
        untraced = run_traced("write4k", observe=False)
        assert traced.elapsed_ns == untraced.elapsed_ns
        assert untraced.records == []

    def test_capture_itself_advances_nothing(self):
        clock = SimClock()
        bus = TraceBus.install(clock)
        with bus.capture():
            with bus.span("syscall", "noop"):
                pass
            bus.event("irq", "noop")
        assert clock.now_ns == 0


class TestLogcatSink:
    def test_spans_become_kernel_log_lines(self, anception_world,
                                            enrolled_ctx):
        log_device = anception_world.machine.kernel.log_device
        bus = TraceBus.install(anception_world.clock)
        sink = LogcatSink(log_device, kinds=("syscall",))
        bus.subscribe(sink)
        try:
            with bus.capture():
                fd = enrolled_ctx.libc.open(
                    enrolled_ctx.data_path("lc"), vfs.O_WRONLY | vfs.O_CREAT
                )
                enrolled_ctx.libc.write(fd, b"z" * PAGE_SIZE)
        finally:
            bus.unsubscribe(sink)
        lines = [
            msg for tag, msg in log_device.entries
            if tag == "kernel" and msg.startswith("trace:")
        ]
        assert any("syscall write" in line for line in lines)
        assert sink.lines == len(lines)
