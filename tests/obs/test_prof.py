"""WallProfiler tests: accounting, dormancy, and clock neutrality.

The accounting tests drive the profiler with a scripted fake timer, so
self/cumulative splits and the collapsed-stack export are asserted
exactly.  The dormancy tests pin the "near-zero when disabled" contract:
with no profiler installed, :func:`repro.obs.prof.zone` returns the
shared :data:`NULL_ZONE` singleton — no timer reads, no allocation.
"""

import pytest

from repro.clock import SimClock
from repro.obs.prof import NULL_ZONE, WallProfiler, active_profiler, zone


class FakeTimer:
    """Deterministic ns source: returns scripted values, then ticks."""

    def __init__(self, values=(), tick=1):
        self.values = list(values)
        self.tick = tick
        self.now = 0
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.values:
            self.now = self.values.pop(0)
        else:
            self.now += self.tick
        return self.now


@pytest.fixture
def prof():
    profiler = WallProfiler(timer=FakeTimer())
    yield profiler
    profiler.uninstall()


class TestDisabledPath:
    def test_zone_is_null_singleton_when_uninstalled(self):
        assert active_profiler() is None
        assert zone("channel.copy") is NULL_ZONE
        assert zone("anything.else") is NULL_ZONE

    def test_null_zone_is_inert_context_manager(self):
        with NULL_ZONE as z:
            assert z is NULL_ZONE

    def test_disabled_sites_never_read_the_timer(self, prof):
        timer = prof._timer
        with zone("clock.advance"):
            pass
        assert timer.calls == 0

    def test_uninstalled_clock_attribute_cleared(self, prof):
        clock = SimClock()
        prof.install(clock)
        assert clock.prof is prof
        prof.uninstall(clock)
        assert clock.prof is None
        assert zone("x") is NULL_ZONE


class TestZoneAccounting:
    def test_single_zone_self_equals_cum(self):
        timer = FakeTimer(values=[100, 350])
        prof = WallProfiler(timer=timer)
        with prof.zone("a"):
            pass
        rows = prof.table()
        assert rows == [
            {"zone": "a", "calls": 1, "cum_ns": 250, "self_ns": 250,
             "self_share": 1.0},
        ]

    def test_nested_zone_splits_self_from_cum(self):
        # a: [0, 1000]; b nested: [200, 500] -> a self 700, b self 300.
        timer = FakeTimer(values=[0, 200, 500, 1000])
        prof = WallProfiler(timer=timer)
        with prof.zone("a"):
            with prof.zone("b"):
                pass
        stats = {row["zone"]: row for row in prof.table()}
        assert stats["a"]["cum_ns"] == 1000
        assert stats["a"]["self_ns"] == 700
        assert stats["b"]["cum_ns"] == 300
        assert stats["b"]["self_ns"] == 300

    def test_recursion_counts_cum_once(self):
        # Outer a: [0, 1000]; inner a: [200, 500].  Cumulative counts
        # the outermost activation only (gprof semantics); self sums
        # both frames' exclusive time: (1000-0-300) + (500-200) = 1000.
        timer = FakeTimer(values=[0, 200, 500, 1000])
        prof = WallProfiler(timer=timer)
        with prof.zone("a"):
            with prof.zone("a"):
                pass
        (row,) = prof.table()
        assert row["calls"] == 2
        assert row["cum_ns"] == 1000
        assert row["self_ns"] == 1000

    def test_table_sorted_by_self_time_then_name(self):
        prof = WallProfiler(timer=FakeTimer())
        prof._zones["b"] = [1, 50, 50]
        prof._zones["a"] = [1, 50, 50]
        prof._zones["hot"] = [1, 900, 900]
        assert [row["zone"] for row in prof.table()] == ["hot", "a", "b"]

    def test_collapsed_stack_paths_and_units(self):
        # a [0us..10us] with b nested [2us..5us]: a self 7us, a;b 3us.
        timer = FakeTimer(values=[0, 2000, 5000, 10_000])
        prof = WallProfiler(timer=timer)
        with prof.zone("a"):
            with prof.zone("b"):
                pass
        assert prof.collapsed() == "a 7\na;b 3\n"

    def test_collapsed_empty_profiler(self):
        assert WallProfiler(timer=FakeTimer()).collapsed() == ""

    def test_attribution_shares_sum_to_one(self):
        timer = FakeTimer(values=[0, 100, 900, 1000])
        prof = WallProfiler(timer=timer)
        with prof.zone("a"):
            with prof.zone("b"):
                pass
        attribution = prof.attribution()
        assert attribution["total_self_ms"] == 0.001
        assert sum(z["share"] for z in attribution["zones"]) == 1.0

    def test_reset_drops_accounting(self):
        prof = WallProfiler(timer=FakeTimer())
        with prof.zone("a"):
            pass
        prof.reset()
        assert prof.table() == []
        assert prof.collapsed() == ""

    def test_format_table_mentions_every_zone(self):
        timer = FakeTimer(values=[0, 10, 20, 30])
        prof = WallProfiler(timer=timer)
        with prof.zone("ring.push"):
            pass
        with prof.zone("cache.lookup"):
            pass
        text = prof.format_table()
        assert "ring.push" in text and "cache.lookup" in text
        assert text.splitlines()[0].startswith("ZONE")

    def test_format_table_empty(self):
        assert "(no zones recorded)" in WallProfiler(
            timer=FakeTimer()).format_table()


class TestActivation:
    def test_activate_installs_and_uninstalls(self, prof):
        clock = SimClock()
        with prof.activate(clock) as active:
            assert active is prof
            assert active_profiler() is prof
            assert clock.prof is prof
            assert zone("x") is not NULL_ZONE
        assert active_profiler() is None
        assert clock.prof is None

    def test_module_zone_records_on_active_profiler(self, prof):
        with prof.activate():
            with zone("marshal.encode"):
                pass
        assert [row["zone"] for row in prof.table()] == ["marshal.encode"]


class TestEngineNeutrality:
    """Profiling is a read-only overlay on simulated time."""

    def _run(self, profiled):
        from repro.obs.runner import boot_obs_world
        world, ctx = boot_obs_world(read_cache=True, write_behind=True)
        from repro.obs.runner import TRACE_WORKLOADS
        workload = TRACE_WORKLOADS["writeburst"]
        if profiled:
            prof = WallProfiler()
            with prof.activate(world.clock):
                workload(ctx)
            assert prof.total_self_ns > 0
        else:
            workload(ctx)
        return world.clock.now_ns

    def test_simulated_time_bit_identical_with_profiler_on(self):
        assert self._run(profiled=False) == self._run(profiled=True)

    def test_clock_zones_recorded_when_installed_on_clock(self):
        from repro.obs.runner import boot_obs_world
        world, ctx = boot_obs_world()
        prof = WallProfiler()
        with prof.activate(world.clock):
            ctx.libc.getpid()
        zones = {row["zone"] for row in prof.table()}
        assert "clock.advance" in zones
        assert "syscall.dispatch" in zones
