"""The secure banking app (Listing 1 / Figure 2) in both worlds."""

import pytest

from repro.errors import SimulationError
from repro.kernel.process import Credentials
from repro.workloads.apps import BankingApp, run_banking_session
from repro.workloads.servers import BankServer, tls_open, tls_seal


class TestSession:
    def test_login_succeeds_native(self, native_world):
        _running, result, _bank = run_banking_session(native_world)
        assert result["status"] == "ok"
        assert result["balance"] == 152_342

    def test_login_succeeds_anception(self, anception_world):
        _running, result, _bank = run_banking_session(anception_world)
        assert result["status"] == "ok"

    def test_wrong_password_denied(self, native_world):
        _running, result, _bank = run_banking_session(
            native_world, password="wrong"
        )
        assert result["status"] == "denied"

    def test_no_typed_credentials_fails_cleanly(self, native_world):
        from repro.workloads.servers import register_bank

        register_bank(native_world.internet)
        app = BankingApp()
        native_world.install(app)
        running = native_world.launch(app)
        running.run()
        with pytest.raises(SimulationError):
            app.handle_login(running.ctx)


class TestConfidentiality:
    def test_password_never_plaintext_on_wire(self, anception_world):
        _running, _result, bank = run_banking_session(anception_world)
        assert not bank.saw_plaintext("hunter2")
        assert not bank.saw_plaintext("alice:hunter2")

    def test_secret_resides_in_host_memory(self, anception_world):
        running, _result, _bank = run_banking_session(anception_world)
        secret = running.ctx.secret_in_memory
        data = running.task.address_space.read(
            secret["address"], secret["length"], need_prot=0
        )
        assert data == b"alice:hunter2"

    def test_cvm_kernel_cannot_read_the_secret(self, anception_world):
        from repro.errors import HypervisorViolation

        running, _result, _bank = run_banking_session(anception_world)
        secret = running.ctx.secret_in_memory
        with pytest.raises(HypervisorViolation):
            running.task.address_space.read(
                secret["address"], secret["length"],
                window=anception_world.cvm.kernel.frame_window,
                need_prot=0,
            )

    def test_statement_stored_encrypted_in_cvm(self, anception_world):
        run_banking_session(anception_world)
        inode = anception_world.cvm.kernel.vfs.resolve(
            "/data/data/com.bank.secure/statement.enc", Credentials(0)
        )
        blob = bytes(inode.data)
        assert blob.startswith(b"TLS1|")
        assert b"balance" not in blob

    def test_cert_never_in_cvm_filesystem(self, anception_world):
        run_banking_session(anception_world)
        cvm = anception_world.cvm.kernel
        # The app code (and the cert inside it) exists only host-side.
        assert not cvm.vfs.exists("/data/app/com.bank.secure.apk",
                                  Credentials(0))

    def test_input_flows_only_through_host(self, anception_world):
        running, _result, _bank = run_banking_session(anception_world)
        delivered = anception_world.ui.delivered_events
        assert any(pid == running.pid for pid, _e in delivered)


class TestTlsEnvelope:
    def test_seal_open_roundtrip(self):
        key = b"K" * 32
        assert tls_open(key, tls_seal(key, b"payload")) == b"payload"

    def test_ciphertext_hides_plaintext(self):
        sealed = tls_seal(b"K" * 32, b"password=hunter2")
        assert b"hunter2" not in sealed

    def test_tampering_detected(self):
        from repro.errors import SecurityViolation

        key = b"K" * 32
        sealed = bytearray(tls_seal(key, b"amount=100"))
        sealed[-1] ^= 0xFF
        with pytest.raises(SecurityViolation):
            tls_open(key, bytes(sealed))

    def test_wrong_key_rejected(self):
        from repro.errors import SecurityViolation

        sealed = tls_seal(b"A" * 32, b"data")
        with pytest.raises(SecurityViolation):
            tls_open(b"B" * 32, sealed)


class TestBankServer:
    def test_secure_storage_roundtrip(self):
        server = BankServer()

        class Conn:
            pass

        conn = Conn()
        server.handle_connect(conn)
        server.handle_data(conn, b"HELLO|nonce-0001")
        key = server.sessions[conn]
        import json

        reply = server.handle_data(conn, tls_seal(key, json.dumps(
            {"cmd": "STORE", "user": "alice", "data": {"note": "hi"}}
        ).encode()))
        assert json.loads(tls_open(key, reply))["status"] == "stored"
        reply = server.handle_data(conn, tls_seal(key, json.dumps(
            {"cmd": "FETCH", "user": "alice"}
        ).encode()))
        assert json.loads(tls_open(key, reply))["data"] == {"note": "hi"}

    def test_request_without_session_rejected(self):
        server = BankServer()

        class Conn:
            pass

        conn = Conn()
        server.handle_connect(conn)
        assert server.handle_data(conn, b"garbage") == b"ERR|no-session"
