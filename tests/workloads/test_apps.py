"""The other example apps and the popular-app profiles."""

import pytest

from repro.workloads.apps import (
    CalculatorApp,
    GameApp,
    NoteTakingApp,
    POPULAR_APP_PROFILES,
    popular_apps,
)
from repro.workloads.antutu import (
    DatabaseIOWorkload,
    Graphics2DWorkload,
    Graphics3DWorkload,
)
from repro.workloads.sunspider import SUITES, SunSpiderApp


class TestExampleApps:
    @pytest.mark.parametrize("app_type", [CalculatorApp, GameApp,
                                          NoteTakingApp])
    def test_runs_in_both_worlds(self, both_worlds, app_type):
        for world in both_worlds.values():
            result = world.install_and_launch(app_type()).run()
            assert result

    def test_game_savefile_lands_per_world(self, both_worlds):
        from repro.kernel.process import Credentials

        path = "/data/data/com.example.game/savegame.dat"
        native = both_worlds["native"]
        native.install_and_launch(GameApp()).run()
        assert native.kernel.vfs.exists(path, Credentials(0))

        anception = both_worlds["anception"]
        anception.install_and_launch(GameApp()).run()
        assert not anception.kernel.vfs.exists(path, Credentials(0))
        assert anception.cvm.kernel.vfs.exists(path, Credentials(0))

    def test_notes_initial_data_present(self, native_world):
        result = native_world.install_and_launch(NoteTakingApp()).run()
        assert result["notes"] == 10


class TestPopularProfiles:
    def test_six_profiles(self):
        assert len(POPULAR_APP_PROFILES) == 6

    def test_profile_means_match_paper(self):
        fractions = [p[2] for p in POPULAR_APP_PROFILES]
        assert min(fractions) == pytest.approx(0.587)
        assert max(fractions) == pytest.approx(0.801)
        assert sum(fractions) / 6 == pytest.approx(0.737, abs=0.002)

    def test_apps_run_and_report_mix(self, native_world):
        app = popular_apps()[0]
        result = native_world.install_and_launch(app).run()
        assert result["ioctls"] > result["other"]


class TestBenchmarkWorkloads:
    def test_antutu_db_inserts_rows(self, native_world):
        result = native_world.install_and_launch(DatabaseIOWorkload()).run()
        assert result["rows"] == (
            DatabaseIOWorkload.TRANSACTIONS
            * DatabaseIOWorkload.ROWS_PER_TRANSACTION
        )

    @pytest.mark.parametrize("app_type", [Graphics2DWorkload,
                                          Graphics3DWorkload])
    def test_graphics_render_all_frames(self, native_world, app_type):
        result = native_world.install_and_launch(app_type()).run()
        assert result["frames"] == app_type.FRAMES

    def test_sunspider_measures_time(self, native_world):
        result = native_world.install_and_launch(SunSpiderApp("math")).run()
        assert result["elapsed_ms"] > 0

    def test_sunspider_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            SunSpiderApp("webgl")

    def test_all_suites_enumerated(self):
        assert set(SUITES) == {"3d", "access", "bitops", "ctrlflow", "math",
                               "string"}
