"""World assembly and the public API surface."""

import pytest

import repro
from repro.errors import SimulationError
from repro.world import AnceptionWorld, NativeWorld


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_worlds_exported(self):
        assert repro.NativeWorld is NativeWorld
        assert repro.AnceptionWorld is AnceptionWorld


class TestNativeWorld:
    def test_full_service_stack(self, native_world):
        assert len(native_world.system.services) == 15

    def test_no_anception(self, native_world):
        assert native_world.anception is None
        assert native_world.kernel.interposition is None

    def test_ui_accessible(self, native_world):
        assert native_world.ui is native_world.system.ui_stack


class TestAnceptionWorld:
    def test_host_runs_ui_only(self, anception_world):
        assert set(anception_world.system.services) == {
            "window", "input", "activity", "surfaceflinger",
        }

    def test_cvm_runs_delegated_services(self, anception_world):
        cvm_services = set(anception_world.cvm.android.services)
        assert "vold" in cvm_services
        assert "location" in cvm_services
        assert "window" not in cvm_services

    def test_interposition_installed(self, anception_world):
        assert (
            anception_world.kernel.interposition
            is anception_world.anception
        )

    def test_cvm_window_is_64mb(self, anception_world):
        from repro.perf.costs import PAGE_SIZE

        window = anception_world.cvm.hypervisor.guest_window
        assert len(window) * PAGE_SIZE == 64 * 1024 * 1024

    def test_uname_reports_anception_kernel(self, enrolled_ctx):
        assert "anception" in enrolled_ctx.libc.syscall("uname")["release"]

    def test_install_registers_package_in_cvm(self, anception_world):
        from tests.conftest import ScratchApp

        anception_world.install(ScratchApp())
        pm = anception_world.cvm.android.service("package")
        assert "com.test.scratch" in pm.packages

    def test_vulnerability_installed_on_both_kernels(self, anception_world):
        trigger = lambda k, t, a, kw: None
        anception_world.install_kernel_vulnerability("splice", trigger)
        assert "splice" in anception_world.kernel.vulnerabilities
        assert "splice" in anception_world.cvm.kernel.vulnerabilities


class TestWorldHelpers:
    def test_type_text_reaches_focused_app(self, native_world):
        from tests.conftest import ScratchApp

        running = native_world.install_and_launch(ScratchApp())
        running.run()
        running.ctx.create_window("w")
        native_world.focus(running)
        native_world.type_text("typed-in")
        event = running.ctx.wait_input()
        assert event.text == "typed-in"

    def test_focus_requires_window(self, native_world):
        from repro.errors import SyscallError
        from tests.conftest import ScratchApp

        running = native_world.install_and_launch(ScratchApp())
        with pytest.raises(SyscallError):
            native_world.focus(running)
