"""Whole-device integration: many apps, attacks, and recovery in one run.

A 'day in the life' of one Anception device: a populated active set, a
banking session, a graphics workload, three different exploit attempts,
a container crash and reboot — asserting at each stage that the device
keeps its guarantees and its state stays coherent.
"""

import pytest

from repro.exploits.gingerbreak import GingerBreak
from repro.exploits.kernelchopper import KernelChopper
from repro.exploits.sock_sendpage import SockSendpage
from repro.kernel.process import Credentials
from repro.workloads.apps import CalculatorApp, GameApp, NoteTakingApp, run_banking_session
from repro.world import AnceptionWorld


@pytest.fixture(scope="module")
def device():
    """One long-lived device shared by the scenario steps (ordered)."""
    return {"world": AnceptionWorld()}


class TestDayInTheLife:
    def test_step1_populate_device(self, device):
        world = device["world"]
        for app_type in (CalculatorApp, GameApp, NoteTakingApp):
            result = world.install_and_launch(app_type()).run()
            assert result
        assert world.anception.proxies.count >= 3

    def test_step2_banking_session(self, device):
        world = device["world"]
        victim, result, bank = run_banking_session(world)
        assert result["status"] == "ok"
        device["victim"] = victim
        device["bank"] = bank

    def test_step3_gingerbreak_lands_in_container(self, device):
        world = device["world"]
        exploit = GingerBreak()
        exploit.prepare_world(world)
        report = world.install_and_launch(exploit).run()
        assert report.outcome().value == "cvm-root"
        probes = report.probe_against(device["victim"])
        assert not any(probes.values())

    def test_step4_kernelchopper_fails_cleanly(self, device):
        world = device["world"]
        report = world.install_and_launch(KernelChopper()).run()
        assert report.outcome().value == "failed"
        assert not world.cvm.crashed

    def test_step5_sendpage_crashes_container_only(self, device):
        world = device["world"]
        running = world.install_and_launch(SockSendpage())
        running.run()
        assert world.cvm.crashed
        assert not world.kernel.crashed
        # the banking app's secret is still resident and intact
        victim = device["victim"]
        secret = victim.ctx.secret_in_memory
        data = victim.task.address_space.read(
            secret["address"], secret["length"], need_prot=0
        )
        assert data == secret["value"]

    def test_step6_reboot_restores_service(self, device):
        world = device["world"]
        survivors = world.anception.reboot_cvm()
        assert survivors >= 4  # the populated apps + banking app live on
        assert not world.cvm.crashed

    def test_step7_app_data_survived_everything(self, device):
        world = device["world"]
        root = Credentials(0)
        cvm_vfs = world.cvm.kernel.vfs
        assert cvm_vfs.exists(
            "/data/data/com.example.game/savegame.dat", root
        )
        assert cvm_vfs.exists(
            "/data/data/com.bank.secure/statement.enc", root
        )

    def test_step8_device_still_usable(self, device):
        world = device["world"]
        from repro.android.app import App, AppManifest

        class AfterApp(App):
            manifest = AppManifest("com.after.reboot")

            def main(self, ctx):
                ctx.libc.write_file(ctx.data_path("alive"), b"yes")
                return ctx.call_service("location", "get_fix")

        result = world.install_and_launch(AfterApp()).run()
        assert result["lat"] == pytest.approx(42.2808)

    def test_step9_memory_stays_inside_the_window(self, device):
        world = device["world"]
        proxies = world.anception.proxies.count
        active_kb = world.cvm.android.memory_kb(proxy_count=proxies)
        assert active_kb < 64 * 1024

    def test_step10_bank_never_saw_a_secret(self, device):
        assert not device["bank"].saw_plaintext("hunter2")
